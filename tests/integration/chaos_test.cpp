// Randomized "chaos" integration test: a random concern graph (methods ×
// aspects with random guard behavior) is hammered by concurrent callers
// with random deadlines while the protocol verifier watches every cell and
// the moderator trace is validated afterwards.
//
// The property under test is global: WHATEVER the aspect graph does
// (resume/block/abort in any pattern), the framework never violates the
// moderation protocol, never loses an admission/postaction pairing, and
// never deadlocks with wake-all notification.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "aspects/overload.hpp"
#include "concurrency/thread_pool.hpp"
#include "core/framework.hpp"
#include "net/transport.hpp"
#include "runtime/fault.hpp"
#include "runtime/random.hpp"

namespace amf {
namespace {

using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

// A guard whose verdict pattern is pseudo-random but deterministic:
// Block verdicts flip to Resume on the next evaluation of the same
// invocation (so nothing blocks forever), Abort appears with ~10% rate.
class ChaoticAspect final : public core::Aspect {
 public:
  explicit ChaoticAspect(std::uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "chaotic"; }

  Decision precondition(InvocationContext& ctx) override {
    // Invocations that already blocked once under us are let through so
    // the workload always drains.
    if (ctx.note("chaos.blocked." + std::string(name()))) {
      return Decision::kResume;
    }
    const double roll = rng_.uniform();
    if (roll < 0.10) {
      ctx.set_abort_error(runtime::make_error(runtime::ErrorCode::kAborted,
                                              "chaotic veto"));
      return Decision::kAbort;
    }
    if (roll < 0.25) {
      ctx.set_note("chaos.blocked." + std::string(name()), "1");
      return Decision::kBlock;
    }
    return Decision::kResume;
  }

  void entry(InvocationContext&) override { ++entered_; }
  void postaction(InvocationContext&) override { ++posted_; }

  std::uint64_t entered() const { return entered_; }
  std::uint64_t posted() const { return posted_; }

 private:
  runtime::Rng rng_;
  std::uint64_t entered_ = 0;
  std::uint64_t posted_ = 0;
};

struct Dummy {};

class ChaosSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChaosSweep, ProtocolHoldsUnderRandomConcernGraphs) {
  const auto [methods_n, aspects_per_method] = GetParam();
  runtime::EventLog log;
  core::ModeratorOptions options;
  options.log = &log;
  core::ComponentProxy<Dummy> proxy{Dummy{}, options};

  std::vector<MethodId> methods;
  std::vector<std::shared_ptr<ChaoticAspect>> chaotics;
  std::vector<std::shared_ptr<core::HookOrderGuard>> guards;
  for (int mi = 0; mi < methods_n; ++mi) {
    const auto m = MethodId::of("chaos-" + std::to_string(methods_n) + "-" +
                                std::to_string(aspects_per_method) + "-" +
                                std::to_string(mi));
    methods.push_back(m);
    for (int ai = 0; ai < aspects_per_method; ++ai) {
      auto chaotic = std::make_shared<ChaoticAspect>(
          static_cast<std::uint64_t>(mi * 97 + ai * 31 + 5));
      auto guard = std::make_shared<core::HookOrderGuard>(chaotic);
      chaotics.push_back(chaotic);
      guards.push_back(guard);
      proxy.moderator().register_aspect(
          m, AspectKind::of("chaos-k" + std::to_string(ai)), guard);
    }
  }

  std::atomic<long> completed{0}, refused{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        runtime::Rng rng(static_cast<std::uint64_t>(t) + 1000);
        for (int i = 0; i < 400; ++i) {
          const auto m = methods[rng.uniform_int(0, methods.size() - 1)];
          // Chaotic guards change verdict spontaneously rather than on
          // completions, which is outside the framework's wakeup model —
          // so every call carries a deadline; the deadline wakeup itself
          // re-evaluates the guard (and usually admits, see ChaoticAspect).
          auto r = proxy.call(m)
                       .within(std::chrono::milliseconds(
                           rng.uniform_int(1, 20)))
                       .run([](Dummy&) {});
          (r.ok() ? completed : refused).fetch_add(1);
        }
      });
    }
  }

  // Global accounting: every caller got a verdict.
  EXPECT_EQ(completed.load() + refused.load(), 6 * 400);
  EXPECT_GT(completed.load(), 0);

  // Protocol verification: hook ordering clean for every aspect cell...
  for (const auto& guard : guards) {
    EXPECT_TRUE(guard->violations().empty())
        << guard->violations().front().description;
  }
  // ...entry/postaction pairing exact...
  for (const auto& chaotic : chaotics) {
    EXPECT_EQ(chaotic->entered(), chaotic->posted());
  }
  // ...and the moderator trace conforms to the Fig. 3 automaton.
  const auto violations = core::TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
  // Nobody left behind.
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Graphs, ChaosSweep,
                         ::testing::Combine(::testing::Values(1, 3, 6),
                                            ::testing::Values(1, 2, 4)));

// --- seeded fault-injection chaos (DESIGN.md §10) --------------------------
//
// CI runs these under an AMF_FAULT_SEED matrix; env_seed() picks the seed
// up so a storm seen there replays locally with the same schedule. The
// whole section needs the injection hooks compiled in (they are no-ops
// under -DAMF_FAULT_INJECTION=OFF).
#if AMF_FAULT_INJECTION

TEST(SeededChaosTest, FaultStormKeepsProtocolInvariants) {
  // Hook faults injected into every moderator phase at once. Whatever the
  // schedule does, containment must hold: every caller gets a verdict,
  // entry/postaction pairing stays exact, the trace (now containing
  // aspect-fault events) still conforms, and nobody is left blocked.
  runtime::FaultInjector injector(runtime::FaultInjector::env_seed(3));
  injector.arm(runtime::FaultPoint::kPrecondition, 0.05);
  injector.arm(runtime::FaultPoint::kEntry, 0.05);
  injector.arm(runtime::FaultPoint::kPostaction, 0.05);

  runtime::EventLog log;
  core::ModeratorOptions options;
  options.log = &log;
  options.fault = &injector;
  core::ComponentProxy<Dummy> proxy{Dummy{}, options};

  std::vector<MethodId> methods;
  std::vector<std::shared_ptr<ChaoticAspect>> chaotics;
  for (int mi = 0; mi < 3; ++mi) {
    const auto m = MethodId::of("seeded-chaos-" + std::to_string(mi));
    methods.push_back(m);
    auto chaotic = std::make_shared<ChaoticAspect>(
        static_cast<std::uint64_t>(mi) * 131 + 17);
    chaotics.push_back(chaotic);
    proxy.moderator().register_aspect(m, AspectKind::of("seeded-chaos-k"),
                                      chaotic);
  }

  std::atomic<long> completed{0}, refused{0}, aspect_faults{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        runtime::Rng rng(static_cast<std::uint64_t>(t) + 2000);
        for (int i = 0; i < 300; ++i) {
          const auto m = methods[rng.uniform_int(0, methods.size() - 1)];
          auto r = proxy.call(m)
                       .within(std::chrono::milliseconds(
                           rng.uniform_int(1, 20)))
                       .run([](Dummy&) {});
          (r.ok() ? completed : refused).fetch_add(1);
          if (!r.ok() &&
              r.error.code == runtime::ErrorCode::kAspectFault) {
            aspect_faults.fetch_add(1);
          }
        }
      });
    }
  }

  EXPECT_EQ(completed.load() + refused.load(), 4 * 300);
  EXPECT_GT(completed.load(), 0);
  EXPECT_GT(injector.fires(runtime::FaultPoint::kPrecondition), 0u)
      << "the storm must actually fire";
  EXPECT_EQ(aspect_faults.load(),
            static_cast<long>(
                injector.fires(runtime::FaultPoint::kPrecondition)))
      << "every injected guard fault surfaces as exactly one kAspectFault";
  for (const auto& chaotic : chaotics) {
    EXPECT_EQ(chaotic->entered(), chaotic->posted());
  }
  const auto violations = core::TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
}

TEST(SeededChaosTest, SameSeedReproducesTheAbortSchedule) {
  // Single caller, fixed call count: the decision index sequence is then
  // deterministic, so the PATTERN of injected aborts — not just their
  // count — must be identical across runs with one seed, and (almost
  // surely) different under another.
  auto run = [](std::uint64_t seed) {
    runtime::FaultInjector injector(seed);
    injector.arm(runtime::FaultPoint::kPrecondition, 0.2);
    core::ModeratorOptions options;
    options.fault = &injector;
    core::ComponentProxy<Dummy> proxy{Dummy{}, options};
    const auto m = MethodId::of("seeded-replay");
    proxy.moderator().register_aspect(
        m, AspectKind::of("seeded-replay-k"),
        std::make_shared<core::LambdaAspect>("plain"));
    std::vector<bool> aborted;
    for (int i = 0; i < 200; ++i) {
      aborted.push_back(!proxy.invoke(m, [](Dummy&) {}).ok());
    }
    return aborted;
  };

  const auto first = run(41);
  EXPECT_EQ(first, run(41)) << "same seed must replay the same schedule";
  EXPECT_NE(first, run(42));
  EXPECT_GT(std::count(first.begin(), first.end(), true), 0);
}

TEST(SeededChaosTest, OneSeedDrivesModeratorTransportAndPool) {
  // The same injector threads through the moderator, the wire and the
  // thread pool, so one seed schedules the whole storm. Invariants: pool
  // work all runs (delays only reorder it), transport accounting matches
  // the injector's drop fires, and moderated calls stay protocol-clean.
  runtime::FaultInjector injector(runtime::FaultInjector::env_seed(5));
  injector.arm(runtime::FaultPoint::kPostaction, 0.1);
  injector.arm(runtime::FaultPoint::kDropMessage, 0.2);
  injector.arm(runtime::FaultPoint::kDelay, 0.2);

  net::Transport::Options topts;
  topts.fault = &injector;
  net::Transport transport(topts);
  auto sink = transport.open("chaos-sink");

  core::ModeratorOptions options;
  options.fault = &injector;
  core::ComponentProxy<Dummy> proxy{Dummy{}, options};
  const auto m = MethodId::of("seeded-trio");
  proxy.moderator().register_aspect(
      m, AspectKind::of("seeded-trio-k"),
      std::make_shared<core::LambdaAspect>("plain"));

  constexpr int kTasks = 200;
  std::atomic<int> ran{0};
  {
    concurrency::ThreadPool pool(4, &injector);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&] {
        ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
        net::Envelope env;
        env.target = "chaos-sink";
        ASSERT_TRUE(transport.send(env));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(transport.dropped(),
            injector.fires(runtime::FaultPoint::kDropMessage));
  std::size_t received = 0;
  while (sink->pending() > 0) {
    if (sink->receive()) ++received;
  }
  EXPECT_EQ(received + transport.dropped(),
            static_cast<std::size_t>(kTasks));
  EXPECT_EQ(proxy.moderator().stats(m).completed,
            static_cast<std::uint64_t>(kTasks));
}

TEST(OverloadStormTest, HighPriorityRetainsServiceWhileLowPrioritySheds) {
  // Overload storm (DESIGN.md §12): seeded burst arrivals through a
  // delay-injected caller pool hammer one method guarded by the adaptive
  // limiter in shed mode. The survival properties under test:
  //   * nobody hangs — every caller gets a verdict, and every refused
  //     low-priority caller gets the STRUCTURED kOverloaded abort;
  //   * priority ordering — high-priority callers keep at least their
  //     no-storm success rate while low priority sheds first;
  //   * the moderation protocol stays clean throughout (hook order, trace,
  //     no leftover waiters).
  runtime::FaultInjector injector(runtime::FaultInjector::env_seed(11));
  injector.arm(runtime::FaultPoint::kDelay, 0.3);

  runtime::EventLog log;
  core::ModeratorOptions options;
  options.log = &log;
  core::ComponentProxy<Dummy> proxy{Dummy{}, options};
  const auto m = MethodId::of("overload-storm");

  aspects::AdaptiveLimiterAspect::Options lo;
  lo.initial_limit = 2;
  lo.min_limit = 1;
  lo.latency_target = std::chrono::milliseconds(2);
  lo.increase_per_completion = 0.01;  // the storm must stay overloaded
  lo.shed = aspects::ShedPolicy{.enabled = true, .protect_priority = 1};
  auto limiter = std::make_shared<aspects::AdaptiveLimiterAspect>(
      runtime::RealClock::instance(), lo);
  auto guard = std::make_shared<core::HookOrderGuard>(limiter);
  proxy.moderator().register_aspect(m, AspectKind::of("overload-storm-k"),
                                    guard);

  const auto body = [](Dummy&) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  };

  // Phase A — no storm: the high-priority baseline success rate.
  constexpr int kBaseline = 40;
  int baseline_ok = 0;
  for (int i = 0; i < kBaseline; ++i) {
    if (proxy.call(m)
            .priority(1)
            .within(std::chrono::seconds(5))
            .run(body)
            .ok()) {
      ++baseline_ok;
    }
  }
  const double baseline_rate =
      static_cast<double>(baseline_ok) / kBaseline;

  // Phase B — the storm: one burst of mixed-priority arrivals, callers
  // jittered by the seeded delay injection.
  constexpr int kStorm = 300;
  std::atomic<int> high_total{0}, high_ok{0};
  std::atomic<int> low_ok{0}, low_shed{0}, unexpected{0};
  {
    concurrency::ThreadPool pool(8, &injector);
    for (int i = 0; i < kStorm; ++i) {
      const bool high = (i % 8 == 0);
      pool.submit([&, high] {
        if (high) {
          high_total.fetch_add(1);
          auto r = proxy.call(m)
                       .priority(1)
                       .within(std::chrono::seconds(5))
                       .run(body);
          if (r.ok()) high_ok.fetch_add(1);
        } else {
          auto r = proxy.call(m).priority(0).run(body);
          if (r.ok()) {
            low_ok.fetch_add(1);
          } else if (r.status == core::InvocationStatus::kAborted &&
                     r.error.code == runtime::ErrorCode::kOverloaded) {
            low_shed.fetch_add(1);
          } else {
            unexpected.fetch_add(1);
          }
        }
      });
    }
  }  // pool drains: every storm caller has returned

  // Global accounting: a shed is a verdict, never a hang.
  EXPECT_EQ(high_total.load(), kStorm / 8 + (kStorm % 8 ? 1 : 0));
  EXPECT_EQ(low_ok.load() + low_shed.load(),
            kStorm - high_total.load());
  EXPECT_EQ(unexpected.load(), 0)
      << "low-priority refusals must be structured kOverloaded aborts";
  EXPECT_GT(low_shed.load(), 0) << "the storm must actually overload";
  EXPECT_EQ(limiter->sheds(), static_cast<std::uint64_t>(low_shed.load()));

  // Priority ordering: the storm must not degrade high-priority service
  // below its quiet-hours baseline.
  const double storm_rate =
      static_cast<double>(high_ok.load()) / high_total.load();
  EXPECT_GE(storm_rate, baseline_rate)
      << "low priority must shed FIRST — high priority keeps its rate";

  // Protocol hygiene end to end.
  EXPECT_TRUE(guard->violations().empty())
      << guard->violations().front().description;
  const auto violations = core::TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
  EXPECT_EQ(limiter->in_flight(), 0u);
}

#endif  // AMF_FAULT_INJECTION

}  // namespace
}  // namespace amf

// Randomized "chaos" integration test: a random concern graph (methods ×
// aspects with random guard behavior) is hammered by concurrent callers
// with random deadlines while the protocol verifier watches every cell and
// the moderator trace is validated afterwards.
//
// The property under test is global: WHATEVER the aspect graph does
// (resume/block/abort in any pattern), the framework never violates the
// moderation protocol, never loses an admission/postaction pairing, and
// never deadlocks with wake-all notification.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "core/framework.hpp"
#include "runtime/random.hpp"

namespace amf {
namespace {

using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

// A guard whose verdict pattern is pseudo-random but deterministic:
// Block verdicts flip to Resume on the next evaluation of the same
// invocation (so nothing blocks forever), Abort appears with ~10% rate.
class ChaoticAspect final : public core::Aspect {
 public:
  explicit ChaoticAspect(std::uint64_t seed) : rng_(seed) {}

  std::string_view name() const override { return "chaotic"; }

  Decision precondition(InvocationContext& ctx) override {
    // Invocations that already blocked once under us are let through so
    // the workload always drains.
    if (ctx.note("chaos.blocked." + std::string(name()))) {
      return Decision::kResume;
    }
    const double roll = rng_.uniform();
    if (roll < 0.10) {
      ctx.set_abort_error(runtime::make_error(runtime::ErrorCode::kAborted,
                                              "chaotic veto"));
      return Decision::kAbort;
    }
    if (roll < 0.25) {
      ctx.set_note("chaos.blocked." + std::string(name()), "1");
      return Decision::kBlock;
    }
    return Decision::kResume;
  }

  void entry(InvocationContext&) override { ++entered_; }
  void postaction(InvocationContext&) override { ++posted_; }

  std::uint64_t entered() const { return entered_; }
  std::uint64_t posted() const { return posted_; }

 private:
  runtime::Rng rng_;
  std::uint64_t entered_ = 0;
  std::uint64_t posted_ = 0;
};

struct Dummy {};

class ChaosSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ChaosSweep, ProtocolHoldsUnderRandomConcernGraphs) {
  const auto [methods_n, aspects_per_method] = GetParam();
  runtime::EventLog log;
  core::ModeratorOptions options;
  options.log = &log;
  core::ComponentProxy<Dummy> proxy{Dummy{}, options};

  std::vector<MethodId> methods;
  std::vector<std::shared_ptr<ChaoticAspect>> chaotics;
  std::vector<std::shared_ptr<core::HookOrderGuard>> guards;
  for (int mi = 0; mi < methods_n; ++mi) {
    const auto m = MethodId::of("chaos-" + std::to_string(methods_n) + "-" +
                                std::to_string(aspects_per_method) + "-" +
                                std::to_string(mi));
    methods.push_back(m);
    for (int ai = 0; ai < aspects_per_method; ++ai) {
      auto chaotic = std::make_shared<ChaoticAspect>(
          static_cast<std::uint64_t>(mi * 97 + ai * 31 + 5));
      auto guard = std::make_shared<core::HookOrderGuard>(chaotic);
      chaotics.push_back(chaotic);
      guards.push_back(guard);
      proxy.moderator().register_aspect(
          m, AspectKind::of("chaos-k" + std::to_string(ai)), guard);
    }
  }

  std::atomic<long> completed{0}, refused{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&, t] {
        runtime::Rng rng(static_cast<std::uint64_t>(t) + 1000);
        for (int i = 0; i < 400; ++i) {
          const auto m = methods[rng.uniform_int(0, methods.size() - 1)];
          // Chaotic guards change verdict spontaneously rather than on
          // completions, which is outside the framework's wakeup model —
          // so every call carries a deadline; the deadline wakeup itself
          // re-evaluates the guard (and usually admits, see ChaoticAspect).
          auto r = proxy.call(m)
                       .within(std::chrono::milliseconds(
                           rng.uniform_int(1, 20)))
                       .run([](Dummy&) {});
          (r.ok() ? completed : refused).fetch_add(1);
        }
      });
    }
  }

  // Global accounting: every caller got a verdict.
  EXPECT_EQ(completed.load() + refused.load(), 6 * 400);
  EXPECT_GT(completed.load(), 0);

  // Protocol verification: hook ordering clean for every aspect cell...
  for (const auto& guard : guards) {
    EXPECT_TRUE(guard->violations().empty())
        << guard->violations().front().description;
  }
  // ...entry/postaction pairing exact...
  for (const auto& chaotic : chaotics) {
    EXPECT_EQ(chaotic->entered(), chaotic->posted());
  }
  // ...and the moderator trace conforms to the Fig. 3 automaton.
  const auto violations = core::TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
  // Nobody left behind.
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Graphs, ChaosSweep,
                         ::testing::Combine(::testing::Values(1, 3, 6),
                                            ::testing::Values(1, 2, 4)));

}  // namespace
}  // namespace amf

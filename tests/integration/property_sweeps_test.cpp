// Parameterized property sweeps: the core invariants of the bundled
// synchronization concerns, exercised across a grid of shapes
// (threads × limits × workloads) rather than at single points.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "aspects/bulkhead.hpp"
#include "aspects/synchronization.hpp"
#include "core/framework.hpp"
#include "runtime/random.hpp"

namespace amf {
namespace {

using core::ComponentProxy;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

// ---------------------------------------------------------------------------
// Property: MutualExclusionAspect(limit) never admits more than `limit`
// concurrent bodies, for any thread count.
// ---------------------------------------------------------------------------
class MutexLimitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MutexLimitSweep, ConcurrencyNeverExceedsLimit) {
  const auto [threads_n, limit] = GetParam();
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ps-mx-" + std::to_string(threads_n) + "-" +
                              std::to_string(limit));
  proxy.moderator().register_aspect(
      m, AspectKind::of("ps-mx"),
      std::make_shared<aspects::MutualExclusionAspect>(limit));
  std::atomic<int> in{0}, peak{0}, done{0};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < threads_n; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 150; ++i) {
          auto r = proxy.invoke(m, [&](Dummy&) {
            const int now = in.fetch_add(1) + 1;
            int prev = peak.load();
            while (prev < now && !peak.compare_exchange_weak(prev, now)) {
            }
            in.fetch_sub(1);
          });
          if (r.ok()) done.fetch_add(1);
        }
      });
    }
  }
  EXPECT_LE(peak.load(), limit);
  EXPECT_EQ(done.load(), threads_n * 150);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MutexLimitSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: readers-writer — never a writer concurrent with anything, for
// any reader/writer thread mix.
// ---------------------------------------------------------------------------
class RwMixSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RwMixSweep, WritersAlwaysExclusive) {
  const auto [readers_n, writers_n] = GetParam();
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto rm = MethodId::of("ps-rw-r-" + std::to_string(readers_n) + "-" +
                               std::to_string(writers_n));
  const auto wm = MethodId::of("ps-rw-w-" + std::to_string(readers_n) + "-" +
                               std::to_string(writers_n));
  auto rw = std::make_shared<aspects::ReadersWriterAspect>();
  rw->add_reader(rm);
  rw->add_writer(wm);
  proxy.moderator().register_aspect(rm, AspectKind::of("ps-rw"), rw);
  proxy.moderator().register_aspect(wm, AspectKind::of("ps-rw"), rw);

  std::atomic<int> readers_in{0}, writers_in{0};
  std::atomic<bool> violation{false};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < readers_n; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          (void)proxy.invoke(rm, [&](Dummy&) {
            readers_in.fetch_add(1);
            if (writers_in.load() != 0) violation.store(true);
            readers_in.fetch_sub(1);
          });
        }
      });
    }
    for (int t = 0; t < writers_n; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 200; ++i) {
          (void)proxy.invoke(wm, [&](Dummy&) {
            if (writers_in.fetch_add(1) != 0) violation.store(true);
            if (readers_in.load() != 0) violation.store(true);
            writers_in.fetch_sub(1);
          });
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(rw->active_readers(), 0u);
  EXPECT_EQ(rw->active_writers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Mixes, RwMixSweep,
                         ::testing::Combine(::testing::Values(1, 4, 7),
                                            ::testing::Values(1, 3)));

// ---------------------------------------------------------------------------
// Property: bulkhead — per-class peaks never exceed the class budget AND
// one class's saturation never blocks another (progress isolation).
// ---------------------------------------------------------------------------
class BulkheadSweep : public ::testing::TestWithParam<int> {};

TEST_P(BulkheadSweep, ClassPeaksBounded) {
  const int limit = GetParam();
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ps-bh-" + std::to_string(limit));
  proxy.moderator().register_aspect(
      m, AspectKind::of("ps-bh"),
      std::make_shared<aspects::BulkheadAspect>(limit));
  constexpr int kClasses = 3;
  std::atomic<int> in[kClasses] = {};
  std::atomic<int> peak[kClasses] = {};
  {
    std::vector<std::jthread> workers;
    for (int c = 0; c < kClasses; ++c) {
      for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&, c] {
          runtime::Principal who{"class" + std::to_string(c), {}, "tok"};
          for (int i = 0; i < 100; ++i) {
            (void)proxy.call(m).as(who).run([&](Dummy&) {
              const int now = in[c].fetch_add(1) + 1;
              int prev = peak[c].load();
              while (prev < now &&
                     !peak[c].compare_exchange_weak(prev, now)) {
              }
              in[c].fetch_sub(1);
            });
          }
        });
      }
    }
  }
  for (int c = 0; c < kClasses; ++c) {
    EXPECT_LE(peak[c].load(), limit) << "class " << c;
  }
  const auto stats = proxy.moderator().stats(m);
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClasses * 4 * 100));
}

INSTANTIATE_TEST_SUITE_P(Limits, BulkheadSweep, ::testing::Values(1, 2, 4));

// ---------------------------------------------------------------------------
// Property: bounded resource — committed/reserved stay within capacity for
// any producer/consumer multiplicity (max_active sweep).
// ---------------------------------------------------------------------------
class BoundedActiveSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BoundedActiveSweep, InvariantHoldsWithMultipleActives) {
  const auto [capacity, max_active] = GetParam();
  auto state = std::make_shared<aspects::BoundedResourceState>(capacity);
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto pm = MethodId::of("ps-br-p-" + std::to_string(capacity) + "-" +
                               std::to_string(max_active));
  const auto cm = MethodId::of("ps-br-c-" + std::to_string(capacity) + "-" +
                               std::to_string(max_active));
  proxy.moderator().register_aspect(
      pm, AspectKind::of("ps-br"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kProducer, state,
          max_active));
  proxy.moderator().register_aspect(
      cm, AspectKind::of("ps-br"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kConsumer, state,
          max_active));
  // Observer aspect: checks the invariant at every admission, under the
  // moderator lock (so it sees consistent state).
  auto violated = std::make_shared<bool>(false);
  for (const auto m : {pm, cm}) {
    proxy.moderator().register_aspect(
        m, AspectKind::of("ps-br-check"),
        std::make_shared<core::LambdaAspect>(
            "check", nullptr, [state, violated](core::InvocationContext&) {
              if (state->committed > state->reserved ||
                  state->reserved > state->capacity) {
                *violated = true;
              }
            }));
  }

  constexpr int kOps = 400;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 3; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          (void)proxy.invoke(pm, [](Dummy&) {});
        }
      });
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          (void)proxy.invoke(cm, [](Dummy&) {});
        }
      });
    }
  }
  EXPECT_FALSE(*violated);
  EXPECT_EQ(state->active_producers, 0u);
  EXPECT_EQ(state->active_consumers, 0u);
  EXPECT_EQ(state->committed, 0u);  // equal produce/consume counts drained
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedActiveSweep,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3})));

}  // namespace
}  // namespace amf

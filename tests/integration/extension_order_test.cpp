// Integration reproduction of Figs. 14/17/18: the full phase ordering of an
// extended (authentication + synchronization) participating method,
// observed through the event log:
//
//   auth.pre → sync.pre → entry chain → BODY → sync.post → auth.post
#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "runtime/event_log.hpp"

namespace amf {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

// An aspect that writes every phase it participates in to the log.
class TracingAspect final : public core::Aspect {
 public:
  TracingAspect(std::string name, runtime::EventLog& log)
      : name_(std::move(name)), log_(&log) {}

  std::string_view name() const override { return name_; }

  Decision precondition(InvocationContext& ctx) override {
    log_->append("trace", name_ + ".pre", ctx.id());
    return Decision::kResume;
  }
  void entry(InvocationContext& ctx) override {
    log_->append("trace", name_ + ".entry", ctx.id());
  }
  void postaction(InvocationContext& ctx) override {
    log_->append("trace", name_ + ".post", ctx.id());
  }

 private:
  std::string name_;
  runtime::EventLog* log_;
};

TEST(ExtensionOrderTest, Figure14SequenceHolds) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ext-open");
  const auto kAuth = AspectKind::of("ext-auth");
  const auto kSync = AspectKind::of("ext-sync");
  // Registration order is sync first (the base system), then the
  // extension reorders: auth OUTSIDE sync.
  proxy.moderator().register_aspect(
      m, kSync, std::make_shared<TracingAspect>("sync", log));
  proxy.moderator().register_aspect(
      m, kAuth, std::make_shared<TracingAspect>("auth", log));
  proxy.moderator().bank().set_kind_order({kAuth, kSync});

  auto r = proxy.invoke(m, [&](Dummy&) { log.append("trace", "BODY"); });
  ASSERT_TRUE(r.ok());

  const char* expected[] = {"auth.pre",  "sync.pre", "auth.entry",
                            "sync.entry", "BODY",     "sync.post",
                            "auth.post"};
  const auto events = log.by_category("trace");
  ASSERT_EQ(events.size(), std::size(expected));
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(events[i].message, expected[i]) << "at position " << i;
  }
}

TEST(ExtensionOrderTest, ThreeConcernStackUnwindsInReverse) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ext3");
  const auto kA = AspectKind::of("ext3-a");
  const auto kB = AspectKind::of("ext3-b");
  const auto kC = AspectKind::of("ext3-c");
  proxy.moderator().bank().set_kind_order({kA, kB, kC});
  for (const auto& [kind, name] :
       {std::pair{kA, "A"}, std::pair{kB, "B"}, std::pair{kC, "C"}}) {
    proxy.moderator().register_aspect(
        m, kind, std::make_shared<TracingAspect>(name, log));
  }
  ASSERT_TRUE(proxy.invoke(m, [&](Dummy&) {}).ok());
  const auto events = log.by_category("trace");
  std::vector<std::string> messages;
  for (const auto& e : events) messages.push_back(e.message);
  EXPECT_EQ(messages,
            (std::vector<std::string>{"A.pre", "B.pre", "C.pre", "A.entry",
                                      "B.entry", "C.entry", "C.post",
                                      "B.post", "A.post"}));
}

TEST(ExtensionOrderTest, ReorderingKindsReordersLiveSystem) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ext-reorder");
  const auto kX = AspectKind::of("exr-x");
  const auto kY = AspectKind::of("exr-y");
  proxy.moderator().register_aspect(
      m, kX, std::make_shared<TracingAspect>("X", log));
  proxy.moderator().register_aspect(
      m, kY, std::make_shared<TracingAspect>("Y", log));

  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  auto first_pre = log.by_category("trace")[0].message;
  EXPECT_EQ(first_pre, "X.pre");  // registration order

  log.clear();
  proxy.moderator().bank().set_kind_order({kY, kX});
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_EQ(log.by_category("trace")[0].message, "Y.pre");
}

}  // namespace
}  // namespace amf

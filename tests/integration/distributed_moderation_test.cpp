// Integration: the paper's architecture over the distribution substrate.
// Remote clients reach the functional component only through the server-
// side proxy, so every aspect (authentication, synchronization) moderates
// remote calls exactly as local ones.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "apps/ticket/ticket_proxy.hpp"
#include "net/rpc.hpp"

namespace amf {
namespace {

using namespace apps::ticket;

constexpr auto kTimeout = std::chrono::seconds(5);

class DistributedFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    proxy = make_ticket_proxy(/*capacity=*/2);
    ASSERT_TRUE(store.add_user("alice", "pw", {}).ok());
    extend_with_authentication(*proxy, store);

    server = std::make_unique<net::RpcServer>(transport, "tickets", 4);
    server->register_method("open", [this](const net::Envelope& req) {
      Ticket t;
      t.id = req.get_u64("id").value_or(0);
      t.opened_by = req.get("user").value_or("");
      auto call = proxy->call(open_method());
      if (auto token = req.get("token")) {
        if (auto p = store.principal_for(*token)) call.as(*p);
      }
      auto r = call.within(std::chrono::milliseconds(100))
                   .run([&t](TicketServer& s) { s.open(t); });
      net::Envelope resp;
      if (!r.ok()) {
        resp.put("error", r.error.to_string());
        resp.put("status", std::string(core::to_string(r.status)));
      }
      return resp;
    });
    server->register_method("assign", [this](const net::Envelope& req) {
      auto call = proxy->call(assign_method());
      if (auto token = req.get("token")) {
        if (auto p = store.principal_for(*token)) call.as(*p);
      }
      auto r = call.within(std::chrono::milliseconds(100))
                   .run([](TicketServer& s) { return s.assign(); });
      net::Envelope resp;
      if (r.ok()) {
        resp.put_u64("id", r.value->id);
      } else {
        resp.put("error", r.error.to_string());
        resp.put("status", std::string(core::to_string(r.status)));
      }
      return resp;
    });
    server->start();
  }

  void TearDown() override { server->stop(); }

  net::Transport transport;
  runtime::CredentialStore store;
  std::shared_ptr<TicketProxy> proxy;
  std::unique_ptr<net::RpcServer> server;
};

TEST_F(DistributedFixture, UnauthenticatedRemoteCallRefused) {
  net::RpcClient client(transport, "c1");
  net::Envelope req;
  req.method = "open";
  req.put_u64("id", 1);
  auto r = client.call("tickets", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_error());
  EXPECT_NE(r.value().get("error")->find("unauthenticated"),
            std::string::npos);
  EXPECT_EQ(proxy->component().total_opened(), 0u);
}

TEST_F(DistributedFixture, AuthenticatedRemoteRoundTrip) {
  const auto token = store.login("alice", "pw").value().token;
  net::RpcClient client(transport, "c2");
  net::Envelope open;
  open.method = "open";
  open.put_u64("id", 7);
  open.put("token", token);
  auto r1 = client.call("tickets", std::move(open), kTimeout);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().is_error());

  net::Envelope assign;
  assign.method = "assign";
  assign.put("token", token);
  auto r2 = client.call("tickets", std::move(assign), kTimeout);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().get_u64("id"), 7u);
}

TEST_F(DistributedFixture, ServerSideSynchronizationBindsRemoteCallers) {
  // Capacity is 2; a third remote open must time out server-side and the
  // client must see the typed timeout status.
  const auto token = store.login("alice", "pw").value().token;
  net::RpcClient client(transport, "c3");
  for (std::uint64_t i = 0; i < 2; ++i) {
    net::Envelope open;
    open.method = "open";
    open.put_u64("id", i);
    open.put("token", token);
    auto r = client.call("tickets", std::move(open), kTimeout);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(r.value().is_error());
  }
  net::Envelope over;
  over.method = "open";
  over.put_u64("id", 99);
  over.put("token", token);
  auto r = client.call("tickets", std::move(over), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_error());
  EXPECT_EQ(r.value().get("status"), "timed-out");
}

TEST_F(DistributedFixture, ConcurrentRemoteProducersAndConsumers) {
  const auto token = store.login("alice", "pw").value().token;
  constexpr int kClients = 3, kEach = 50;
  std::atomic<int> opened{0}, assigned{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        net::RpcClient client(transport, "cc-" + std::to_string(c));
        for (int i = 0; i < kEach; ++i) {
          net::Envelope open;
          open.method = "open";
          open.put_u64("id",
                       static_cast<std::uint64_t>(c) * kEach + i);
          open.put("token", token);
          auto r1 = client.call("tickets", std::move(open), kTimeout);
          if (r1.ok() && !r1.value().is_error()) opened.fetch_add(1);

          net::Envelope assign;
          assign.method = "assign";
          assign.put("token", token);
          auto r2 = client.call("tickets", std::move(assign), kTimeout);
          if (r2.ok() && !r2.value().is_error()) assigned.fetch_add(1);
        }
      });
    }
  }
  // Strict alternation per client bounds pending by capacity; totals add up.
  EXPECT_EQ(opened.load(), kClients * kEach);
  EXPECT_EQ(static_cast<std::size_t>(opened.load() - assigned.load()),
            proxy->component().pending());
}

}  // namespace
}  // namespace amf

// Cross-aspect composition matrix: concerns that were tested individually
// are combined the way the paper's §5.3 envisions, and the combination's
// joint semantics are asserted end-to-end.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aspects/aspects.hpp"
#include "core/framework.hpp"

namespace amf {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using core::InvocationStatus;
using runtime::AspectKind;
using runtime::MethodId;

struct Account {
  // Accessed via atomic_ref because ConditionalSynchronizationForWritersOnly
  // deliberately reads while a writer holds the conditional mutex — the
  // pattern is only sound for atomically readable state, which is exactly
  // its point. (atomic_ref keeps the component movable for the proxy.)
  long balance = 0;
  void deposit(long amount) {
    std::atomic_ref(balance).fetch_add(amount, std::memory_order_relaxed);
  }
  long read_balance() const {
    return std::atomic_ref(const_cast<long&>(balance))
        .load(std::memory_order_relaxed);
  }
};

TEST(CompositionMatrixTest, AuthThenBulkheadThenMutex) {
  // authenticate (veto anonymous) → bulkhead (1 per user) → mutex (1 total)
  runtime::CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "pw", {}).ok());
  ASSERT_TRUE(store.add_user("bob", "pw", {}).ok());
  auto ann = store.login("ann", "pw").value();
  auto bob = store.login("bob", "pw").value();

  ComponentProxy<Account> proxy{Account{}};
  const auto m = MethodId::of("cm-deposit");
  auto& mod = proxy.moderator();
  mod.bank().set_kind_order({runtime::kinds::authentication(),
                             AspectKind::of("cm-bulkhead"),
                             runtime::kinds::synchronization()});
  mod.register_aspect(m, runtime::kinds::authentication(),
                      std::make_shared<aspects::AuthenticationAspect>(store));
  mod.register_aspect(m, AspectKind::of("cm-bulkhead"),
                      std::make_shared<aspects::BulkheadAspect>(1));
  mod.register_aspect(m, runtime::kinds::synchronization(),
                      std::make_shared<aspects::MutualExclusionAspect>());

  // Anonymous veto happens before any budget is consumed.
  auto anon = proxy.invoke(m, [](Account& a) { a.deposit(1); });
  EXPECT_EQ(anon.status, InvocationStatus::kAborted);
  EXPECT_EQ(anon.error.code, runtime::ErrorCode::kUnauthenticated);

  // Authenticated traffic from two users is safe and complete.
  std::atomic<int> completed{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const auto& who = t % 2 == 0 ? ann : bob;
        for (int i = 0; i < 200; ++i) {
          auto r = proxy.call(m).as(who).run(
              [](Account& a) { a.deposit(1); });
          if (r.ok()) completed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(completed.load(), 800);
  EXPECT_EQ(proxy.component().balance, 800);
}

TEST(CompositionMatrixTest, ConditionalSynchronizationForWritersOnly) {
  // A single cell applies mutual exclusion ONLY to calls noted as writes;
  // reads pass unguarded (cheaper than a ReadersWriterAspect when reads
  // tolerate staleness).
  ComponentProxy<Account> proxy{Account{}};
  const auto m = MethodId::of("cm-cond");
  auto inner = std::make_shared<aspects::MutualExclusionAspect>();
  proxy.moderator().register_aspect(
      m, AspectKind::of("cm-c1"),
      core::only_when(
          [](const InvocationContext& ctx) {
            return ctx.note("mode") == "write";
          },
          inner));

  // A long write holds the lock...
  std::atomic<bool> writer_in{false};
  std::jthread writer([&] {
    (void)proxy.call(m).note("mode", "write").run([&](Account& a) {
      writer_in.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      a.deposit(1);
    });
  });
  while (!writer_in.load()) std::this_thread::yield();

  // ...a read is NOT blocked by it...
  auto read = proxy.call(m)
                  .within(std::chrono::milliseconds(20))
                  .run([](Account& a) { return a.read_balance(); });
  EXPECT_TRUE(read.ok());

  // ...but a second write is.
  auto write2 = proxy.call(m)
                    .note("mode", "write")
                    .within(std::chrono::milliseconds(10))
                    .run([](Account& a) { a.deposit(1); });
  EXPECT_EQ(write2.status, InvocationStatus::kTimedOut);
}

TEST(CompositionMatrixTest, RateLimitComposesWithCircuitBreaker) {
  // quota → breaker: over-limit calls abort BEFORE reaching the breaker,
  // so throttling does not pollute the failure count.
  runtime::ManualClock clock;
  core::ModeratorOptions mo;
  mo.clock = &clock;
  ComponentProxy<Account> proxy{Account{}, mo};
  const auto m = MethodId::of("cm-rate-breaker");
  auto breaker = std::make_shared<aspects::CircuitBreakerAspect>(clock);
  auto& mod = proxy.moderator();
  mod.bank().set_kind_order(
      {runtime::kinds::quota(), runtime::kinds::fault_tolerance()});
  mod.register_aspect(
      m, runtime::kinds::quota(),
      std::make_shared<aspects::RateLimitAspect>(
          clock, aspects::RateLimitAspect::Options{10.0, 2.0, false}));
  mod.register_aspect(m, runtime::kinds::fault_tolerance(), breaker);

  ASSERT_TRUE(proxy.invoke(m, [](Account& a) { a.deposit(1); }).ok());
  ASSERT_TRUE(proxy.invoke(m, [](Account& a) { a.deposit(1); }).ok());
  for (int i = 0; i < 5; ++i) {
    auto r = proxy.invoke(m, [](Account& a) { a.deposit(1); });
    EXPECT_EQ(r.error.code, runtime::ErrorCode::kResourceExhausted);
  }
  EXPECT_EQ(breaker->state(), aspects::CircuitBreakerAspect::State::kClosed)
      << "throttled calls must not count as failures";
}

TEST(CompositionMatrixTest, CohortThenMutexSerializesBatch) {
  // cohort(3) → mutex: three callers are admitted as a batch but still
  // execute the critical section one at a time.
  ComponentProxy<Account> proxy{Account{}};
  const auto m = MethodId::of("cm-cohort-mutex");
  auto& mod = proxy.moderator();
  mod.bank().set_kind_order(
      {AspectKind::of("cm-cohort"), runtime::kinds::synchronization()});
  mod.register_aspect(m, AspectKind::of("cm-cohort"),
                      std::make_shared<aspects::CohortAspect>(3));
  mod.register_aspect(m, runtime::kinds::synchronization(),
                      std::make_shared<aspects::MutualExclusionAspect>());

  std::atomic<int> concurrent{0}, max_concurrent{0}, done{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&] {
        auto r = proxy.invoke(m, [&](Account& a) {
          const int now = concurrent.fetch_add(1) + 1;
          int prev = max_concurrent.load();
          while (prev < now &&
                 !max_concurrent.compare_exchange_weak(prev, now)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          a.deposit(1);
          concurrent.fetch_sub(1);
        });
        if (r.ok()) done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 3);
  EXPECT_EQ(max_concurrent.load(), 1);
  EXPECT_EQ(proxy.component().balance, 3);
}

TEST(CompositionMatrixTest, AuditObservesEveryOtherConcernsDecisions) {
  // audit (outermost) records arrive/cancel for calls vetoed by deeper
  // concerns — the composed system is observable end to end.
  runtime::CredentialStore store;
  runtime::EventLog log;
  ComponentProxy<Account> proxy{Account{}};
  const auto m = MethodId::of("cm-audited");
  auto& mod = proxy.moderator();
  mod.bank().set_kind_order(
      {runtime::kinds::audit(), runtime::kinds::authentication()});
  mod.register_aspect(m, runtime::kinds::audit(),
                      std::make_shared<aspects::AuditAspect>(log));
  mod.register_aspect(m, runtime::kinds::authentication(),
                      std::make_shared<aspects::AuthenticationAspect>(store));
  (void)proxy.invoke(m, [](Account& a) { a.deposit(1); });  // anonymous
  EXPECT_EQ(log.count("audit", "arrive:cm-audited"), 1u);
  EXPECT_EQ(log.count("audit", "cancel:cm-audited"), 1u);
  EXPECT_EQ(log.count("audit", "enter:cm-audited"), 0u);
}

}  // namespace
}  // namespace amf

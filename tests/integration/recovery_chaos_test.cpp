// Kill-and-recover chaos family (ISSUE 7 tentpole oracle).
//
// A forked child runs the durable ticket app in strict-sync mode
// (sync_every = 1) with the seeded FaultInjector's kCrashPoint wired to
// raise(SIGKILL) — the process dies INSIDE a storage edge, mid-flush or
// mid-snapshot-publish, exactly where a real power cut lands. The child
// acknowledges an operation to the parent (append to an ack file) only
// after the moderated call returned AND its commit record was covered by
// fsync. The parent then reopens the directory and checks the durability
// contract:
//
//   * recovery succeeds — a crash never leaves undiagnosable damage;
//   * every ACKED effect is present (nothing acknowledged is lost);
//   * no effect is duplicated (sequential ticket ids + FIFO assigns make
//     duplicates visible as id mismatches);
//   * the recovery run's own moderation trace is protocol-clean (G4:
//     admissions pair with postactivations, on replay exactly as live).
//
// Three generations crash into the SAME directory, so recovery output is
// itself crashed over — snapshots, log tails and torn frames compose.
// AMF_FAULT_SEED sweeps the crash schedule in CI (1/2/3 matrix).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/ticket/durable_ticket.hpp"
#include "core/verify.hpp"
#include "runtime/event_log.hpp"
#include "runtime/fault.hpp"

namespace amf {
namespace {

namespace fs = std::filesystem;
using apps::ticket::DurableTicketApp;
using apps::ticket::Ticket;
using runtime::FaultInjector;
using runtime::FaultPoint;
using runtime::Principal;

constexpr std::size_t kCapacity = 64;
constexpr int kOpsPerGeneration = 42;

Principal named(std::string name) {
  Principal p;
  p.name = std::move(name);
  return p;
}

DurableTicketApp::Options base_options() {
  DurableTicketApp::Options options;
  options.capacity = kCapacity;
  options.wal.sync_every = 1;  // strict mode: every commit fsynced
  return options;
}

/// One ack line: 'O <id>' (opened) or 'A <id>' (assigned). Written with a
/// single write(2) after the record is known durable.
void ack(int fd, char op, std::uint64_t id) {
  const std::string line =
      std::string(1, op) + " " + std::to_string(id) + "\n";
  (void)!::write(fd, line.data(), line.size());
}

struct AckedOps {
  std::vector<std::uint64_t> opened;
  std::vector<std::uint64_t> assigned;
};

void parse_acks(const std::string& path, AckedOps& into) {
  std::ifstream in(path);
  std::string op;
  std::uint64_t id = 0;
  // A SIGKILL can in principle tear the final line; operator>> simply
  // stops there, which drops at most one UNACKED suffix — safe direction.
  while (in >> op >> id) {
    if (op == "O") into.opened.push_back(id);
    if (op == "A") into.assigned.push_back(id);
  }
}

/// Child body: recover, then run seeded traffic until the crash schedule
/// kills the process (or the op budget runs out — a clean exit, also a
/// valid generation). Never returns into gtest.
[[noreturn]] void run_child(const std::string& dir, const std::string& acks,
                            std::uint64_t seed) {
  FaultInjector fault(seed);
  auto options = base_options();
  options.wal.fault = &fault;
  options.wal.crash_hook = [](std::string_view) { ::raise(SIGKILL); };

  // Recovery itself runs before the injector is armed: each generation
  // crashes in LIVE traffic, and recovery-time crashes are covered by the
  // generations compounding into the same directory.
  auto app = DurableTicketApp::open(dir, options);
  if (!app.ok()) ::_exit(2);
  const int fd = ::open(acks.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) ::_exit(3);

  fault.arm(FaultPoint::kCrashPoint, 0.015);
  std::uint64_t next_id = app.value()->total_opened() + 1;
  for (int i = 0; i < kOpsPerGeneration; ++i) {
    if (i % 3 == 2 && app.value()->pending() > 0) {
      auto r = app.value()->assign_ticket(named("oncall"));
      if (!r.ok()) ::_exit(4);
      if (app.value()->storage().last_synced() <
          app.value()->persistence().last_lsn()) {
        ::_exit(5);  // strict mode broke its own durability contract
      }
      ack(fd, 'A', r.value->id);
    } else {
      Ticket t;
      t.id = next_id;
      t.description = "chaos-" + std::to_string(next_id);
      t.opened_by = "gen";
      auto r = app.value()->open_ticket(t, named("gen"));
      if (!r.ok()) ::_exit(4);
      if (app.value()->storage().last_synced() <
          app.value()->persistence().last_lsn()) {
        ::_exit(5);
      }
      ack(fd, 'O', next_id);
      ++next_id;
    }
    // Periodic checkpoints put the snapshot publish dance (tmp, fsync,
    // rename, fsync-dir) inside the crash schedule too.
    if (i == kOpsPerGeneration / 2) {
      if (!app.value()->checkpoint().ok()) ::_exit(6);
    }
  }
  ::_exit(0);
}

/// Deterministic variant: the hook only fires at one named site, and the
/// probability is 1.0, so the child dies at EXACTLY that storage edge.
[[noreturn]] void run_site_crash_child(const std::string& dir,
                                       const std::string& site) {
  FaultInjector fault(1);
  auto options = base_options();
  options.wal.fault = &fault;
  options.wal.crash_hook = [site](std::string_view s) {
    if (s == site) ::raise(SIGKILL);
  };
  auto app = DurableTicketApp::open(dir, options);
  if (!app.ok()) ::_exit(2);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    Ticket t;
    t.id = id;
    t.description = "pre-crash";
    t.opened_by = "child";
    if (!app.value()->open_ticket(t, named("child")).ok()) ::_exit(4);
  }
  fault.arm(FaultPoint::kCrashPoint, 1.0);
  (void)app.value()->checkpoint();  // dies inside the publish dance
  ::_exit(7);                       // the crash site never fired: bug
}

class RecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("amf_recovery_chaos_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string store_dir() const { return (dir_ / "store").string(); }
  std::string ack_path(int generation) const {
    return (dir_ / ("acks-" + std::to_string(generation))).string();
  }

  fs::path dir_;
};

TEST_F(RecoveryChaosTest, KilledChildrenNeverLoseAcknowledgedEffects) {
  const std::uint64_t seed = FaultInjector::env_seed(7);
  AckedOps acked;

  for (int generation = 0; generation < 3; ++generation) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      run_child(store_dir(), ack_path(generation),
                seed + std::uint64_t(generation) * 1013);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    ASSERT_TRUE(killed || clean)
        << "generation " << generation << " child failed, status=" << status;
    parse_acks(ack_path(generation), acked);

    // Recover in-parent and audit the durability contract. The app closes
    // again at scope exit, so the NEXT generation's child recovers from
    // this recovered-then-crashed-again directory.
    runtime::EventLog log;
    auto options = base_options();
    options.moderator.log = &log;
    auto app = DurableTicketApp::open(store_dir(), options);
    ASSERT_TRUE(app.ok()) << "generation " << generation << ": "
                          << app.error().to_string();

    // Nothing acknowledged is lost. (The recovered state may contain a few
    // MORE effects than were acked — durable but killed before the ack —
    // which is the correct direction.)
    EXPECT_GE(app.value()->total_opened(), acked.opened.size());
    EXPECT_GE(app.value()->total_assigned(), acked.assigned.size());
    EXPECT_EQ(app.value()->pending(),
              app.value()->total_opened() - app.value()->total_assigned());

    // No duplicated or reordered effects: the children open sequential ids
    // starting from the recovered total, so every acked open id must sit
    // within [1, total_opened]; FIFO assigns hand out ids 1, 2, 3, ... so
    // the acked assign ids must be exactly that prefix, in order.
    if (!acked.opened.empty()) {
      EXPECT_LE(acked.opened.back(), app.value()->total_opened());
    }
    for (std::size_t i = 0; i < acked.assigned.size(); ++i) {
      EXPECT_EQ(acked.assigned[i], i + 1)
          << "assign order diverged at ack #" << i;
    }
    EXPECT_LE(acked.assigned.size(), app.value()->total_assigned());

    // Replay re-used the live protocol, and logged nothing new.
    EXPECT_EQ(app.value()->persistence().appended(), 0u);
    const auto violations = core::TraceValidator::validate(log);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front().description);
  }

  // Final audit: drain every pending ticket; ids must be strictly
  // increasing with no gaps relative to the assign counter — duplicates or
  // losses anywhere in the three crashed generations would surface here.
  auto app = DurableTicketApp::open(store_dir(), base_options());
  ASSERT_TRUE(app.ok());
  std::uint64_t expected = app.value()->total_assigned() + 1;
  const std::size_t pending = app.value()->pending();
  for (std::size_t i = 0; i < pending; ++i, ++expected) {
    auto r = app.value()->assign_ticket(named("auditor"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value->id, expected);
  }
  EXPECT_EQ(app.value()->pending(), 0u);
}

TEST_F(RecoveryChaosTest, CrashBeforeSnapshotRenameFallsBackToTheLog) {
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) run_site_crash_child(store_dir(), "snapshot.pre-rename");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "status=" << status;

  auto app = DurableTicketApp::open(store_dir(), base_options());
  ASSERT_TRUE(app.ok()) << app.error().to_string();
  // The .tmp was never renamed: no snapshot exists, the full log replays.
  EXPECT_EQ(app.value()->recovery_stats().snapshot_lsn, 0u);
  EXPECT_EQ(app.value()->recovery_stats().replayed, 6u);
  EXPECT_EQ(app.value()->total_opened(), 6u);
  EXPECT_EQ(app.value()->pending(), 6u);
}

TEST_F(RecoveryChaosTest, CrashAfterSnapshotRenameUsesTheSnapshot) {
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) run_site_crash_child(store_dir(), "snapshot.post-rename");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "status=" << status;

  auto app = DurableTicketApp::open(store_dir(), base_options());
  ASSERT_TRUE(app.ok()) << app.error().to_string();
  // The rename committed the snapshot before the crash: restore from it,
  // nothing left to replay, identical observable state either way.
  EXPECT_EQ(app.value()->recovery_stats().snapshot_lsn, 6u);
  EXPECT_EQ(app.value()->recovery_stats().replayed, 0u);
  EXPECT_EQ(app.value()->total_opened(), 6u);
  EXPECT_EQ(app.value()->pending(), 6u);
}

}  // namespace
}  // namespace amf

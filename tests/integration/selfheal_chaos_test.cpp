// Crash-during-spill-drain chaos family (ISSUE 9 tentpole oracle).
//
// The recovery chaos suite proved SIGKILL inside a storage edge never loses
// an acknowledged effect. This suite composes that crash schedule with the
// OTHER failure this PR introduces: a fenced WAL device whose committed
// records sit in the self-healing spill buffer, mid-way through being
// drained back into a reopened log. The child:
//
//   1. runs acked traffic on a healthy device (sync_every = 1);
//   2. faults the device (kIoError) — appends keep succeeding into the
//      spill, but are NOT acked, because the ack rule requires
//      last_synced() >= persistence().last_lsn() and the synced floor is
//      frozen across the fence window;
//   3. heals the device and probes, with kCrashPoint armed — the drain
//      re-appends the spill in LSN order through the live sync path, so
//      SIGKILL lands between "record re-appended" and "record fsynced";
//   4. if it survived the drain, resumes acked traffic.
//
// The oracle is unchanged — and that is the point: spilled records were
// never acknowledged, so a crash that vaporizes the in-memory spill is
// indistinguishable (to the contract) from a crash before the append. The
// drain's partial progress is durable-but-unacked, the safe direction.
// Generations compound into one directory; AMF_FAULT_SEED sweeps schedules.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/ticket/durable_ticket.hpp"
#include "core/verify.hpp"
#include "runtime/event_log.hpp"
#include "runtime/fault.hpp"
#include "storage/self_healing.hpp"

namespace amf {
namespace {

namespace fs = std::filesystem;
using apps::ticket::DurableTicketApp;
using apps::ticket::Ticket;
using runtime::FaultInjector;
using runtime::FaultPoint;
using runtime::Principal;

constexpr std::size_t kCapacity = 64;
constexpr int kOpsPerGeneration = 48;

Principal named(std::string name) {
  Principal p;
  p.name = std::move(name);
  return p;
}

DurableTicketApp::Options base_options() {
  DurableTicketApp::Options options;
  options.capacity = kCapacity;
  options.wal.sync_every = 1;
  options.self_heal = true;  // the device is allowed to fail out from under
  options.spill_capacity = 256;
  return options;
}

void ack(int fd, char op, std::uint64_t id) {
  const std::string line =
      std::string(1, op) + " " + std::to_string(id) + "\n";
  (void)!::write(fd, line.data(), line.size());
}

struct AckedOps {
  std::vector<std::uint64_t> opened;
  std::vector<std::uint64_t> assigned;
};

void parse_acks(const std::string& path, AckedOps& into) {
  std::ifstream in(path);
  std::string op;
  std::uint64_t id = 0;
  while (in >> op >> id) {
    if (op == "O") into.opened.push_back(id);
    if (op == "A") into.assigned.push_back(id);
  }
}

/// The one ack rule of the whole suite: an effect may be acknowledged iff
/// every commit record issued so far is covered by fsync. Inside a fence
/// window this is false by construction (the synced floor froze when the
/// device faulted), so spilled effects are never acked.
bool durable(DurableTicketApp& app) {
  return app.storage().last_synced() >= app.persistence().last_lsn();
}

/// Child body: acked traffic, then a device-fault window with spilled
/// (unacked) traffic, then a drain under an armed crash schedule. Never
/// returns into gtest.
[[noreturn]] void run_child(const std::string& dir, const std::string& acks,
                            std::uint64_t seed) {
  FaultInjector fault(seed);
  auto options = base_options();
  options.wal.fault = &fault;
  options.wal.crash_hook = [](std::string_view) { ::raise(SIGKILL); };

  auto app = DurableTicketApp::open(dir, options);
  if (!app.ok()) ::_exit(2);
  const int fd = ::open(acks.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) ::_exit(3);

  std::uint64_t next_id = app.value()->total_opened() + 1;
  const auto step = [&](int i) {
    if (i % 3 == 2 && app.value()->pending() > 0) {
      auto r = app.value()->assign_ticket(named("oncall"));
      if (!r.ok()) ::_exit(4);
      if (durable(*app.value())) ack(fd, 'A', r.value->id);
    } else {
      Ticket t;
      t.id = next_id;
      t.description = "storm-" + std::to_string(next_id);
      t.opened_by = "gen";
      auto r = app.value()->open_ticket(t, named("gen"));
      if (!r.ok()) ::_exit(4);
      if (durable(*app.value())) ack(fd, 'O', next_id);
      ++next_id;
    }
  };

  // Phase 1: healthy, strict-sync, every effect acked.
  for (int i = 0; i < kOpsPerGeneration / 3; ++i) step(i);

  // Phase 2: the device faults out. Appends spill; durable() stays false,
  // so nothing in this window is acknowledged.
  fault.arm(FaultPoint::kIoError, 1.0);
  for (int i = kOpsPerGeneration / 3; i < 2 * kOpsPerGeneration / 3; ++i) {
    step(i);
  }
  auto* sh = app.value()->self_healing();
  if (sh == nullptr) ::_exit(6);
  if (sh->healthy()) ::_exit(6);  // the window must actually have fenced

  // Phase 3: the device heals; the drain replays the spill through the
  // sync path with the crash schedule armed. Most children die HERE.
  fault.disarm(FaultPoint::kIoError);
  fault.arm(FaultPoint::kCrashPoint, 0.10);
  if (!sh->probe()) ::_exit(7);  // healthy device: the drain must succeed

  // Phase 4: survived the drain — the spill is on disk, acking resumes.
  fault.disarm(FaultPoint::kCrashPoint);
  for (int i = 2 * kOpsPerGeneration / 3; i < kOpsPerGeneration; ++i) {
    step(i);
  }
  ::_exit(0);
}

/// Deterministic variant: fence, spill exactly three records, then die at
/// the FIRST sync edge of the drain.
[[noreturn]] void run_drain_crash_child(const std::string& dir) {
  FaultInjector fault(1);
  auto options = base_options();
  options.wal.fault = &fault;
  options.wal.crash_hook = [](std::string_view s) {
    if (s == "wal.sync.pre-write") ::raise(SIGKILL);
  };
  auto app = DurableTicketApp::open(dir, options);
  if (!app.ok()) ::_exit(2);
  for (std::uint64_t id = 1; id <= 6; ++id) {
    Ticket t;
    t.id = id;
    t.description = "durable";
    t.opened_by = "child";
    if (!app.value()->open_ticket(t, named("child")).ok()) ::_exit(4);
  }
  fault.arm(FaultPoint::kIoError, 1.0);
  for (std::uint64_t id = 7; id <= 9; ++id) {
    Ticket t;
    t.id = id;
    t.description = "spilled";
    t.opened_by = "child";
    if (!app.value()->open_ticket(t, named("child")).ok()) ::_exit(4);
  }
  if (app.value()->self_healing()->spill_size() == 0) ::_exit(6);
  fault.disarm(FaultPoint::kIoError);
  fault.arm(FaultPoint::kCrashPoint, 1.0);
  (void)app.value()->self_healing()->probe();  // dies inside the drain
  ::_exit(7);                                  // crash site never fired: bug
}

class SelfHealChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::temp_directory_path() /
           ("amf_selfheal_chaos_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string store_dir() const { return (dir_ / "store").string(); }
  std::string ack_path(int generation) const {
    return (dir_ / ("acks-" + std::to_string(generation))).string();
  }

  fs::path dir_;
};

TEST_F(SelfHealChaosTest, DrainCrashesNeverLoseAcknowledgedEffects) {
  const std::uint64_t seed = FaultInjector::env_seed(11);
  AckedOps acked;

  for (int generation = 0; generation < 3; ++generation) {
    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      run_child(store_dir(), ack_path(generation),
                seed + std::uint64_t(generation) * 2027);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    ASSERT_TRUE(killed || clean)
        << "generation " << generation << " child failed, status=" << status;
    parse_acks(ack_path(generation), acked);

    runtime::EventLog log;
    auto options = base_options();
    options.moderator.log = &log;
    auto app = DurableTicketApp::open(store_dir(), options);
    ASSERT_TRUE(app.ok()) << "generation " << generation << ": "
                          << app.error().to_string();

    // Nothing acknowledged is lost; spilled-but-unacked effects may have
    // evaporated with the process, which the contract permits.
    EXPECT_GE(app.value()->total_opened(), acked.opened.size());
    EXPECT_GE(app.value()->total_assigned(), acked.assigned.size());
    EXPECT_EQ(app.value()->pending(),
              app.value()->total_opened() - app.value()->total_assigned());

    // No duplicated effects: sequential open ids + FIFO assign ids make a
    // duplicate visible as an id above the recovered totals. Unlike the
    // strict-sync suite, acked assigns are a strictly increasing
    // SUBSEQUENCE of 1..total — fence-window assigns consumed FIFO ids
    // durably (once drained) but were never acknowledged.
    if (!acked.opened.empty()) {
      EXPECT_LE(acked.opened.back(), app.value()->total_opened());
    }
    for (std::size_t i = 1; i < acked.assigned.size(); ++i) {
      EXPECT_LT(acked.assigned[i - 1], acked.assigned[i])
          << "assign order diverged at ack #" << i;
    }
    if (!acked.assigned.empty()) {
      EXPECT_LE(acked.assigned.back(), app.value()->total_assigned());
    }

    // Recovery replayed through the live protocol, cleanly.
    EXPECT_EQ(app.value()->persistence().appended(), 0u);
    const auto violations = core::TraceValidator::validate(log);
    EXPECT_TRUE(violations.empty())
        << (violations.empty() ? "" : violations.front().description);
  }

  // Final audit: draining every pending ticket walks the assign counter
  // with no gaps — duplicates or losses anywhere in the storm surface here.
  auto app = DurableTicketApp::open(store_dir(), base_options());
  ASSERT_TRUE(app.ok());
  std::uint64_t expected = app.value()->total_assigned() + 1;
  const std::size_t pending = app.value()->pending();
  for (std::size_t i = 0; i < pending; ++i, ++expected) {
    auto r = app.value()->assign_ticket(named("auditor"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value->id, expected);
  }
  EXPECT_EQ(app.value()->pending(), 0u);
}

TEST_F(SelfHealChaosTest, CrashAtTheFirstDrainSyncKeepsTheDurablePrefix) {
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) run_drain_crash_child(store_dir());
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "status=" << status;

  auto app = DurableTicketApp::open(store_dir(), base_options());
  ASSERT_TRUE(app.ok()) << app.error().to_string();
  // The six pre-fence opens were strict-synced: all recovered. The three
  // spilled opens died with the process somewhere inside the drain — any
  // prefix of them may have reached the disk, none is required to.
  EXPECT_GE(app.value()->total_opened(), 6u);
  EXPECT_LE(app.value()->total_opened(), 9u);
  EXPECT_EQ(app.value()->pending(), app.value()->total_opened());
  EXPECT_EQ(app.value()->recovery_stats().replayed,
            app.value()->total_opened());
}

}  // namespace
}  // namespace amf

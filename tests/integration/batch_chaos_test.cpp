// Chaos variant of the batch-moderation stress (DESIGN.md §14): a seeded
// kDelay fault stretches the combiner's drain loop per node, widening the
// windows in which owners claim their nodes back (timeouts, stop tokens)
// and recompositions flush the queue. The name matches the CI chaos job's
// `ctest -R chaos` filter, so it runs across the AMF_FAULT_SEED matrix.
//
// Invariants, whatever the delay schedule does:
//   * grouped exclusion holds (never two bodies in a limit-1 group),
//   * every invocation settles exactly once (admit+complete, abort, or
//     timeout — nothing stranded, nothing double-counted),
//   * G4 pairing is exact for the shared aspect,
//   * the moderator drains clean: no blocked waiters after the storm.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "aspects/synchronization.hpp"
#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "runtime/clock.hpp"
#include "runtime/fault.hpp"

namespace amf {
namespace {

using core::AspectModerator;
using core::Decision;
using core::InvocationContext;
using core::LambdaAspect;
using core::ModeratorOptions;
using runtime::AspectKind;
using runtime::ErrorCode;
using runtime::FaultInjector;
using runtime::FaultPoint;
using runtime::MethodId;

TEST(BatchChaosTest, CombinerDrainSurvivesSeededDelays) {
  FaultInjector injector(FaultInjector::env_seed(17));
  injector.arm(FaultPoint::kDelay, 0.05);

  ModeratorOptions options;
  options.fault = &injector;
  AspectModerator moderator(options);
  const auto a = MethodId::of("bchaos-a");
  const auto b = MethodId::of("bchaos-b");
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("bchaos-excl"), excl);
  moderator.register_aspect(b, AspectKind::of("bchaos-excl"), excl);

  std::atomic<int> link_entries{0};
  std::atomic<int> link_posts{0};
  auto link = std::make_shared<LambdaAspect>(
      "bchaos-link", nullptr,
      [&](InvocationContext&) { link_entries.fetch_add(1); },
      [&](InvocationContext&) { link_posts.fetch_add(1); });
  moderator.register_aspect(a, AspectKind::of("bchaos-link"), link);
  moderator.register_aspect(b, AspectKind::of("bchaos-link"), link);

  std::atomic<int> inside{0};
  std::atomic<int> violations{0};
  std::atomic<int> completed{0};
  std::atomic<int> timed_out{0};
  std::atomic<int> other{0};
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 120;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const auto method = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(method);
          // A tight-but-realistic deadline: most calls admit, a delayed
          // drain occasionally sheds one from the queue as expired.
          ctx.set_deadline(runtime::RealClock::instance().now() +
                           std::chrono::milliseconds(250));
          const Decision d = moderator.preactivation(ctx);
          if (d == Decision::kResume) {
            if (inside.fetch_add(1) + 1 > 1) violations.fetch_add(1);
            inside.fetch_sub(1);
            moderator.postactivation(ctx);
            completed.fetch_add(1);
          } else if (ctx.abort_error() &&
                     ctx.abort_error()->code == ErrorCode::kTimeout) {
            timed_out.fetch_add(1);
          } else {
            other.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(other.load(), 0) << "an invocation settled with an unexpected "
                                "verdict under injected delays";
  EXPECT_EQ(completed.load() + timed_out.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(link_entries.load(), completed.load());
  EXPECT_EQ(link_entries.load(), link_posts.load())
      << "a delayed drain tore an entry/postaction pair";
  EXPECT_EQ(excl->active(), 0u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
  EXPECT_EQ(moderator.stats(a).completed + moderator.stats(b).completed,
            static_cast<std::uint64_t>(completed.load()));
}

}  // namespace
}  // namespace amf

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aspects/synchronization.hpp"
#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

class RwFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    reader_m = MethodId::of("rw-read");
    writer_m = MethodId::of("rw-write");
    rw = std::make_shared<ReadersWriterAspect>();
    rw->add_reader(reader_m);
    rw->add_writer(writer_m);
  }

  MethodId reader_m, writer_m;
  std::shared_ptr<ReadersWriterAspect> rw;
};

TEST_F(RwFixture, ReadersShareWritersExclude) {
  InvocationContext r1(reader_m), r2(reader_m), w(writer_m);
  EXPECT_EQ(rw->precondition(r1), Decision::kResume);
  rw->entry(r1);
  EXPECT_EQ(rw->precondition(r2), Decision::kResume);
  rw->entry(r2);
  EXPECT_EQ(rw->active_readers(), 2u);
  rw->on_arrive(w);
  EXPECT_EQ(rw->precondition(w), Decision::kBlock);
  rw->postaction(r1);
  rw->postaction(r2);
  EXPECT_EQ(rw->precondition(w), Decision::kResume);
}

TEST_F(RwFixture, WriterExcludesEveryone) {
  InvocationContext w(writer_m), r(reader_m), w2(writer_m);
  rw->on_arrive(w);
  ASSERT_EQ(rw->precondition(w), Decision::kResume);
  rw->entry(w);
  EXPECT_EQ(rw->precondition(r), Decision::kBlock);
  rw->on_arrive(w2);
  EXPECT_EQ(rw->precondition(w2), Decision::kBlock);
  rw->postaction(w);
  EXPECT_EQ(rw->precondition(w2), Decision::kResume);
}

TEST_F(RwFixture, WriterPriorityBarsNewReaders) {
  InvocationContext r1(reader_m), r2(reader_m), w(writer_m);
  ASSERT_EQ(rw->precondition(r1), Decision::kResume);
  rw->entry(r1);
  rw->on_arrive(w);  // writer now waiting
  EXPECT_EQ(rw->precondition(r2), Decision::kBlock)
      << "writer-priority: reader must not overtake a waiting writer";
  rw->postaction(r1);
  ASSERT_EQ(rw->precondition(w), Decision::kResume);
  rw->entry(w);
  rw->postaction(w);
  EXPECT_EQ(rw->precondition(r2), Decision::kResume);
}

TEST_F(RwFixture, CancelledWriterUnbarsReaders) {
  InvocationContext r(reader_m), w(writer_m);
  ASSERT_EQ(rw->precondition(r), Decision::kResume);
  rw->entry(r);
  rw->on_arrive(w);
  InvocationContext r2(reader_m);
  EXPECT_EQ(rw->precondition(r2), Decision::kBlock);
  rw->on_cancel(w);  // writer timed out
  EXPECT_EQ(rw->precondition(r2), Decision::kResume);
}

TEST(ReadersWriterNoPriorityTest, ReadersOvertakeWhenDisabled) {
  ReadersWriterAspect::Options opts;
  opts.writer_priority = false;
  ReadersWriterAspect rw(opts);
  const auto reader_m = MethodId::of("np-read");
  const auto writer_m = MethodId::of("np-write");
  rw.add_reader(reader_m);
  rw.add_writer(writer_m);
  InvocationContext r1(reader_m), r2(reader_m), w(writer_m);
  ASSERT_EQ(rw.precondition(r1), Decision::kResume);
  rw.entry(r1);
  rw.on_arrive(w);
  EXPECT_EQ(rw.precondition(r2), Decision::kResume);
}

// End-to-end invariant: no reader ever observes a writer mid-write.
TEST(ReadersWriterIntegrationTest, InvariantUnderContention) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  auto rw = std::make_shared<ReadersWriterAspect>();
  const auto read_m = MethodId::of("int-read");
  const auto write_m = MethodId::of("int-write");
  rw->add_reader(read_m);
  rw->add_writer(write_m);
  proxy.moderator().register_aspect(read_m, AspectKind::of("rw"), rw);
  proxy.moderator().register_aspect(write_m, AspectKind::of("rw"), rw);

  std::atomic<int> writers_in{0};
  std::atomic<int> readers_in{0};
  std::atomic<bool> violation{false};

  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&] {  // writers
        for (int i = 0; i < 300; ++i) {
          proxy.invoke(write_m, [&](Dummy&) {
            if (writers_in.fetch_add(1) != 0) violation.store(true);
            if (readers_in.load() != 0) violation.store(true);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            writers_in.fetch_sub(1);
          });
        }
      });
    }
    for (int t = 0; t < 5; ++t) {
      threads.emplace_back([&] {  // readers
        for (int i = 0; i < 300; ++i) {
          proxy.invoke(read_m, [&](Dummy&) {
            readers_in.fetch_add(1);
            if (writers_in.load() != 0) violation.store(true);
            readers_in.fetch_sub(1);
          });
        }
      });
    }
  }
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(rw->active_readers(), 0u);
  EXPECT_EQ(rw->active_writers(), 0u);
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/audit.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {
  void boom() { throw std::runtime_error("x"); }
};

TEST(AuditAspectTest, SuccessfulCallLeavesArriveEnterExit) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("audited");
  proxy.moderator().register_aspect(m, runtime::kinds::audit(),
                                    std::make_shared<AuditAspect>(log));
  auto r = proxy.call(m)
               .as(runtime::Principal{"ann", {}, "tok"})
               .run([](Dummy&) {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(log.count("audit", "arrive:audited"), 1u);
  EXPECT_EQ(log.count("audit", "enter:audited:ann"), 1u);
  EXPECT_EQ(log.count("audit", "exit:audited:ok"), 1u);
  EXPECT_TRUE(log.happened_before("audit", "arrive:audited", "audit",
                                  "enter:audited:ann"));
  EXPECT_TRUE(log.happened_before("audit", "enter:audited:ann", "audit",
                                  "exit:audited:ok"));
  // All tied to the same invocation id.
  EXPECT_EQ(log.by_invocation(r.invocation_id).size(), 3u);
}

TEST(AuditAspectTest, FailedBodyLogsExitFail) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("audited-fail");
  proxy.moderator().register_aspect(m, runtime::kinds::audit(),
                                    std::make_shared<AuditAspect>(log));
  auto r = proxy.invoke(m, [](Dummy& d) { d.boom(); });
  EXPECT_EQ(r.status, core::InvocationStatus::kFailed);
  EXPECT_EQ(log.count("audit", "exit:audited-fail:fail"), 1u);
}

TEST(AuditAspectTest, VetoedCallLogsCancel) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("audited-veto");
  proxy.moderator().bank().set_kind_order(
      {runtime::kinds::audit(), AspectKind::of("veto")});
  proxy.moderator().register_aspect(m, runtime::kinds::audit(),
                                    std::make_shared<AuditAspect>(log));
  proxy.moderator().register_aspect(
      m, AspectKind::of("veto"),
      std::make_shared<core::LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));
  auto r = proxy.invoke(m, [](Dummy&) {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(log.count("audit", "arrive:audited-veto"), 1u);
  EXPECT_EQ(log.count("audit", "cancel:audited-veto"), 1u);
  EXPECT_EQ(log.count("audit", "enter:audited-veto"), 0u);
}

TEST(AuditAspectTest, AnonymousEnterOmitsUser) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("audited-anon");
  proxy.moderator().register_aspect(m, runtime::kinds::audit(),
                                    std::make_shared<AuditAspect>(log));
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_EQ(log.count("audit", "enter:audited-anon"), 1u);
}

TEST(AuditAspectTest, CustomCategory) {
  runtime::EventLog log;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("audited-cat");
  proxy.moderator().register_aspect(
      m, runtime::kinds::audit(),
      std::make_shared<AuditAspect>(log, "security"));
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_EQ(log.by_category("security").size(), 3u);
  EXPECT_TRUE(log.by_category("audit").empty());
}

}  // namespace
}  // namespace amf::aspects

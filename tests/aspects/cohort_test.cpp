#include "aspects/cohort.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

TEST(CohortTest, FirstArrivalsBlockUntilNth) {
  CohortAspect cohort(3);
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m")),
      c(MethodId::of("m"));
  cohort.on_arrive(a);
  EXPECT_EQ(cohort.precondition(a), Decision::kBlock);
  cohort.on_arrive(b);
  EXPECT_EQ(cohort.precondition(b), Decision::kBlock);
  cohort.on_arrive(c);  // cohort formed
  EXPECT_EQ(cohort.precondition(a), Decision::kResume);
  EXPECT_EQ(cohort.precondition(b), Decision::kResume);
  EXPECT_EQ(cohort.precondition(c), Decision::kResume);
}

TEST(CohortTest, NextCohortStartsFresh) {
  CohortAspect cohort(2);
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m")),
      c(MethodId::of("m"));
  cohort.on_arrive(a);
  cohort.on_arrive(b);
  cohort.entry(a);
  cohort.entry(b);
  EXPECT_EQ(cohort.released_pending(), 0u);
  cohort.on_arrive(c);
  EXPECT_EQ(cohort.precondition(c), Decision::kBlock)
      << "third caller starts a new cohort";
  EXPECT_EQ(cohort.waiting(), 1u);
}

TEST(CohortTest, CancelledWaiterShrinksCohort) {
  CohortAspect cohort(2);
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m"));
  cohort.on_arrive(a);
  cohort.on_cancel(a);  // gave up
  cohort.on_arrive(b);
  EXPECT_EQ(cohort.precondition(b), Decision::kBlock)
      << "a's departure must not count toward b's cohort";
  EXPECT_EQ(cohort.waiting(), 1u);
}

TEST(CohortIntegrationTest, ThreadsAdmittedInBatches) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("cohort-e2e");
  proxy.moderator().register_aspect(m, AspectKind::of("ch"),
                                    std::make_shared<CohortAspect>(3));
  std::atomic<int> done{0};
  {
    std::vector<std::jthread> threads;
    // First two callers alone: must time out (cohort incomplete).
    for (int i = 0; i < 2; ++i) {
      threads.emplace_back([&] {
        auto r = proxy.call(m)
                     .within(std::chrono::milliseconds(60))
                     .run([](Dummy&) {});
        if (r.ok()) done.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    EXPECT_EQ(done.load(), 0);
    // Third caller completes the cohort: all three proceed.
    threads.emplace_back([&] {
      auto r = proxy.call(m)
                   .within(std::chrono::milliseconds(60))
                   .run([](Dummy&) {});
      if (r.ok()) done.fetch_add(1);
    });
  }
  EXPECT_EQ(done.load(), 3);
}

TEST(CohortIntegrationTest, TimeoutShrinksFormingCohort) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("cohort-timeout");
  auto cohort = std::make_shared<CohortAspect>(2);
  proxy.moderator().register_aspect(m, AspectKind::of("ch"), cohort);
  // A lone caller times out; the cohort must be empty afterwards.
  auto r = proxy.call(m)
               .within(std::chrono::milliseconds(20))
               .run([](Dummy&) {});
  EXPECT_EQ(r.status, core::InvocationStatus::kTimedOut);
  EXPECT_EQ(cohort->waiting(), 0u);
  EXPECT_EQ(cohort->released_pending(), 0u);
}

}  // namespace
}  // namespace amf::aspects

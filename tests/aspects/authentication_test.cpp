#include "aspects/authentication.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using core::InvocationStatus;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {
  int calls = 0;
};

class AuthFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store.add_user("ann", "pw", {"support"}).ok());
  }
  runtime::CredentialStore store;
};

TEST_F(AuthFixture, AnonymousCallerVetoed) {
  AuthenticationAspect aspect(store);
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(aspect.precondition(ctx), Decision::kAbort);
  ASSERT_TRUE(ctx.abort_error().has_value());
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kUnauthenticated);
}

TEST_F(AuthFixture, ValidSessionResumes) {
  AuthenticationAspect aspect(store);
  InvocationContext ctx(MethodId::of("m"));
  ctx.set_principal(store.login("ann", "pw").value());
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
  EXPECT_EQ(ctx.note("auth.user"), "ann");
}

TEST_F(AuthFixture, ForgedTokenVetoed) {
  AuthenticationAspect aspect(store);
  InvocationContext ctx(MethodId::of("m"));
  ctx.set_principal(runtime::Principal{"ann", {"support"}, "tok-forged"});
  EXPECT_EQ(aspect.precondition(ctx), Decision::kAbort);
}

TEST_F(AuthFixture, RevokedTokenVetoed) {
  AuthenticationAspect aspect(store);
  auto session = store.login("ann", "pw").value();
  InvocationContext ctx(MethodId::of("m"));
  ctx.set_principal(session);
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
  store.revoke(session.token);
  InvocationContext ctx2(MethodId::of("m"));
  ctx2.set_principal(session);
  EXPECT_EQ(aspect.precondition(ctx2), Decision::kAbort);
}

TEST_F(AuthFixture, EndToEndVetoNeverReachesComponent) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("auth-e2e");
  proxy.moderator().register_aspect(
      m, runtime::kinds::authentication(),
      std::make_shared<AuthenticationAspect>(store));
  auto denied = proxy.invoke(m, [](Dummy& d) { ++d.calls; });
  EXPECT_EQ(denied.status, InvocationStatus::kAborted);
  EXPECT_EQ(denied.error.code, runtime::ErrorCode::kUnauthenticated);
  EXPECT_EQ(proxy.component().calls, 0);

  auto ok = proxy.call(m)
                .as(store.login("ann", "pw").value())
                .run([](Dummy& d) { ++d.calls; });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(proxy.component().calls, 1);
}

}  // namespace
}  // namespace amf::aspects

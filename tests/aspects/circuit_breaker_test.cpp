#include "aspects/fault_tolerance.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::InvocationStatus;
using runtime::ManualClock;
using runtime::MethodId;

struct Flaky {
  bool healthy = false;
  int calls = 0;
  void work() {
    ++calls;
    if (!healthy) throw std::runtime_error("backend down");
  }
};

class BreakerFixture : public ::testing::Test {
 protected:
  BreakerFixture() {
    core::ModeratorOptions options;
    options.clock = &clock;
    proxy = std::make_unique<ComponentProxy<Flaky>>(Flaky{}, options);
    CircuitBreakerAspect::Options bo;
    bo.failure_threshold = 3;
    bo.cooldown = std::chrono::milliseconds(100);
    breaker = std::make_shared<CircuitBreakerAspect>(clock, bo);
    proxy->moderator().register_aspect(m, runtime::kinds::fault_tolerance(),
                                       breaker);
  }

  core::InvocationResult<void> call() {
    return proxy->invoke(m, [](Flaky& f) { f.work(); });
  }

  ManualClock clock;
  MethodId m = MethodId::of("breaker-work");
  std::unique_ptr<ComponentProxy<Flaky>> proxy;
  std::shared_ptr<CircuitBreakerAspect> breaker;
};

TEST_F(BreakerFixture, StaysClosedBelowThreshold) {
  (void)call();
  (void)call();
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kClosed);
  proxy->component().healthy = true;
  EXPECT_TRUE(call().ok());
  // Success resets the streak; two more failures still below threshold.
  proxy->component().healthy = false;
  (void)call();
  (void)call();
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kClosed);
}

TEST_F(BreakerFixture, OpensAfterConsecutiveFailures) {
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(call().status, InvocationStatus::kFailed);
  }
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kOpen);
  // Open circuit fails fast without touching the component.
  const int calls_before = proxy->component().calls;
  auto r = call();
  EXPECT_EQ(r.status, InvocationStatus::kAborted);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kUnavailable);
  EXPECT_EQ(proxy->component().calls, calls_before);
}

TEST_F(BreakerFixture, HalfOpenProbeClosesOnSuccess) {
  for (int i = 0; i < 3; ++i) (void)call();
  ASSERT_EQ(breaker->state(), CircuitBreakerAspect::State::kOpen);
  clock.advance(std::chrono::milliseconds(150));  // past cooldown
  proxy->component().healthy = true;
  EXPECT_TRUE(call().ok());  // the probe
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kClosed);
  EXPECT_TRUE(call().ok());
}

TEST_F(BreakerFixture, HalfOpenProbeReopensOnFailure) {
  for (int i = 0; i < 3; ++i) (void)call();
  clock.advance(std::chrono::milliseconds(150));
  EXPECT_EQ(call().status, InvocationStatus::kFailed);  // probe fails
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kOpen);
  // And fails fast again until the next cooldown.
  EXPECT_EQ(call().status, InvocationStatus::kAborted);
  clock.advance(std::chrono::milliseconds(150));
  proxy->component().healthy = true;
  EXPECT_TRUE(call().ok());
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kClosed);
}

TEST_F(BreakerFixture, HalfOpenAdmitsExactlyOneProbe) {
  // The probe race: two callers arrive after the cooldown expires. The
  // guard sees kOpen-past-cooldown for BOTH (preconditions are pure), so
  // single-admission rests on the D1 split — the first caller's entry()
  // flips the breaker to half-open/probe-in-flight atomically with its
  // guard evaluation, and the second caller's re-evaluation must then be
  // refused. Deterministic forcing: the probe's body is held open on a
  // flag while the second call is issued.
  for (int i = 0; i < 3; ++i) (void)call();
  ASSERT_EQ(breaker->state(), CircuitBreakerAspect::State::kOpen);
  clock.advance(std::chrono::milliseconds(150));  // cooldown elapsed
  proxy->component().healthy = true;

  std::atomic<bool> probe_in_body{false};
  std::atomic<bool> release_probe{false};
  std::jthread prober([&] {
    auto r = proxy->invoke(m, [&](Flaky& f) {
      probe_in_body.store(true);
      while (!release_probe.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      f.work();
    });
    EXPECT_TRUE(r.ok());
  });
  while (!probe_in_body.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // The breaker is now probing; a second arrival must fail fast, not
  // become a second probe against the still-suspect dependency.
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kHalfOpen);
  const int calls_before = proxy->component().calls;
  auto refused = call();
  EXPECT_EQ(refused.status, InvocationStatus::kAborted);
  EXPECT_EQ(refused.error.code, runtime::ErrorCode::kUnavailable);
  EXPECT_EQ(proxy->component().calls, calls_before)
      << "second caller must not reach the component";

  release_probe.store(true);
  prober.join();
  EXPECT_EQ(breaker->state(), CircuitBreakerAspect::State::kClosed);
  EXPECT_TRUE(call().ok());
}

TEST_F(BreakerFixture, SharedBreakerGuardsMethodGroup) {
  const auto m2 = MethodId::of("breaker-other");
  proxy->moderator().register_aspect(m2, runtime::kinds::fault_tolerance(),
                                     breaker);
  for (int i = 0; i < 3; ++i) (void)call();
  // Failures on m open the circuit for m2 as well (one dependency).
  auto r = proxy->invoke(m2, [](Flaky&) {});
  EXPECT_EQ(r.status, InvocationStatus::kAborted);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace amf::aspects

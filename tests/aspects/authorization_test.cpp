#include "aspects/authorization.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::Decision;
using core::InvocationContext;
using runtime::MethodId;

TEST(RoleAuthorizationTest, UnrestrictedMethodPasses) {
  RoleAuthorizationAspect aspect;
  InvocationContext ctx(MethodId::of("free"));
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
}

TEST(RoleAuthorizationTest, MissingRoleVetoed) {
  RoleAuthorizationAspect aspect;
  const auto m = MethodId::of("approve");
  aspect.require(m, "manager");
  InvocationContext ctx(m);
  ctx.set_principal(runtime::Principal{"bob", {"employee"}, "tok"});
  EXPECT_EQ(aspect.precondition(ctx), Decision::kAbort);
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kPermissionDenied);
  EXPECT_NE(ctx.abort_error()->message.find("manager"), std::string::npos);
}

TEST(RoleAuthorizationTest, MatchingRolePasses) {
  RoleAuthorizationAspect aspect;
  const auto m = MethodId::of("approve2");
  aspect.require(m, "manager");
  InvocationContext ctx(m);
  ctx.set_principal(runtime::Principal{"meg", {"manager"}, "tok"});
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
}

TEST(RoleAuthorizationTest, RequirementsArePerMethod) {
  RoleAuthorizationAspect aspect;
  const auto approve = MethodId::of("per-approve");
  const auto submit = MethodId::of("per-submit");
  aspect.require(approve, "manager");
  InvocationContext ctx(submit);
  ctx.set_principal(runtime::Principal{"bob", {}, "tok"});
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
}

TEST(RoleAuthorizationTest, AnonymousFailsRestrictedMethod) {
  RoleAuthorizationAspect aspect;
  const auto m = MethodId::of("anon-approve");
  aspect.require(m, "manager");
  InvocationContext ctx(m);
  EXPECT_EQ(aspect.precondition(ctx), Decision::kAbort);
}

}  // namespace
}  // namespace amf::aspects

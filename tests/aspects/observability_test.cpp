#include "aspects/observability.hpp"

#include <gtest/gtest.h>

#include "aspects/timing.hpp"
#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {
  void boom() { throw std::runtime_error("x"); }
};

TEST(CounterAspectTest, CountsOutcomesPerMethod) {
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("obs-work");
  proxy.moderator().register_aspect(
      m, AspectKind::of("cnt"),
      std::make_shared<CounterAspect>(registry));
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  (void)proxy.invoke(m, [](Dummy& d) { d.boom(); });
  EXPECT_EQ(registry.counter("calls.obs-work.arrived").value(), 3u);
  EXPECT_EQ(registry.counter("calls.obs-work.admitted").value(), 3u);
  EXPECT_EQ(registry.counter("calls.obs-work.ok").value(), 2u);
  EXPECT_EQ(registry.counter("calls.obs-work.failed").value(), 1u);
  EXPECT_EQ(registry.counter("calls.obs-work.refused").value(), 0u);
}

TEST(CounterAspectTest, CountsRefusals) {
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("obs-veto");
  proxy.moderator().bank().set_kind_order(
      {AspectKind::of("cnt"), AspectKind::of("veto")});
  proxy.moderator().register_aspect(
      m, AspectKind::of("cnt"),
      std::make_shared<CounterAspect>(registry));
  proxy.moderator().register_aspect(
      m, AspectKind::of("veto"),
      std::make_shared<core::LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));
  (void)proxy.invoke(m, [](Dummy&) {});
  EXPECT_EQ(registry.counter("calls.obs-veto.arrived").value(), 1u);
  EXPECT_EQ(registry.counter("calls.obs-veto.refused").value(), 1u);
  EXPECT_EQ(registry.counter("calls.obs-veto.admitted").value(), 0u);
}

TEST(SamplingAspectTest, AppliesInnerEveryNth) {
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("obs-sampled");
  auto counted = std::make_shared<CounterAspect>(registry, "sampled");
  proxy.moderator().register_aspect(
      m, AspectKind::of("smp"),
      std::make_shared<SamplingAspect>(counted, 4));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  // Arrivals 0, 4, 8, 12, 16 are sampled: 5 of 20.
  EXPECT_EQ(registry.counter("sampled.obs-sampled.arrived").value(), 5u);
  EXPECT_EQ(registry.counter("sampled.obs-sampled.ok").value(), 5u);
}

TEST(SamplingAspectTest, EveryOneMeansAlways) {
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("obs-always");
  proxy.moderator().register_aspect(
      m, AspectKind::of("smp"),
      std::make_shared<SamplingAspect>(
          std::make_shared<CounterAspect>(registry), 1));
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_EQ(registry.counter("calls.obs-always.ok").value(), 7u);
}

TEST(SamplingAspectTest, PhasesAgreeWithinOneInvocation) {
  // A sampled stateful inner (entry/post pairing) must never see an
  // unpaired phase, whatever the sampling rate.
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("obs-paired");
  auto depth = std::make_shared<int>(0);
  auto max_depth = std::make_shared<int>(0);
  auto inner = std::make_shared<core::LambdaAspect>(
      "pair", nullptr,
      [depth, max_depth](InvocationContext&) {
        *max_depth = std::max(*max_depth, ++*depth);
      },
      [depth](InvocationContext&) { --*depth; });
  proxy.moderator().register_aspect(
      m, AspectKind::of("smp"), std::make_shared<SamplingAspect>(inner, 3));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_EQ(*depth, 0) << "every sampled entry must be paired";
  EXPECT_EQ(*max_depth, 1);
}

TEST(SamplingAspectTest, ZeroNormalizedToOne) {
  SamplingAspect aspect(std::make_shared<core::LambdaAspect>("x"), 0);
  InvocationContext ctx(MethodId::of("m"));
  aspect.on_arrive(ctx);
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
  EXPECT_EQ(aspect.arrivals(), 1u);
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/timing.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::InvocationContext;
using runtime::ManualClock;
using runtime::MethodId;

struct Dummy {};

TEST(TimingAspectTest, RecordsWaitAndServiceTime) {
  ManualClock clock;
  runtime::Registry registry;
  core::ModeratorOptions options;
  options.clock = &clock;
  core::AspectModerator moderator(options);
  const auto m = MethodId::of("timed");
  moderator.register_aspect(
      m, runtime::kinds::timing(),
      std::make_shared<TimingAspect>(registry, clock, "t"));

  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), core::Decision::kResume);
  clock.advance(std::chrono::microseconds(500));  // body "runs"
  moderator.postactivation(ctx);

  auto& wait = registry.histogram("t.timed.wait_ns");
  auto& service = registry.histogram("t.timed.service_ns");
  EXPECT_EQ(wait.count(), 1u);
  EXPECT_EQ(service.count(), 1u);
  EXPECT_EQ(service.sum(), 500'000);
  EXPECT_EQ(wait.sum(), 0);  // admitted instantly
}

TEST(TimingAspectTest, SeparateHistogramsPerMethod) {
  ManualClock clock;
  runtime::Registry registry;
  core::ModeratorOptions options;
  options.clock = &clock;
  core::AspectModerator moderator(options);
  auto timing = std::make_shared<TimingAspect>(registry, clock, "t2");
  const auto m1 = MethodId::of("t2-a");
  const auto m2 = MethodId::of("t2-b");
  moderator.register_aspect(m1, runtime::kinds::timing(), timing);
  moderator.register_aspect(m2, runtime::kinds::timing(), timing);

  for (const auto m : {m1, m2}) {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), core::Decision::kResume);
    moderator.postactivation(ctx);
  }
  EXPECT_EQ(registry.histogram("t2.t2-a.service_ns").count(), 1u);
  EXPECT_EQ(registry.histogram("t2.t2-b.service_ns").count(), 1u);
}

TEST(TimingAspectTest, ManySamplesAccumulate) {
  runtime::Registry registry;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("t3");
  proxy.moderator().register_aspect(
      m, runtime::kinds::timing(),
      std::make_shared<TimingAspect>(registry,
                                     runtime::RealClock::instance(), "t3"));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_EQ(registry.histogram("t3.t3.wait_ns").count(), 100u);
  EXPECT_EQ(registry.histogram("t3.t3.service_ns").count(), 100u);
  EXPECT_GE(registry.histogram("t3.t3.service_ns").max(), 0);
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/scheduling.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <mutex>
#include <thread>
#include <vector>

#include "aspects/synchronization.hpp"
#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

TEST(FifoFairnessTest, AdmitsInArrivalOrder) {
  FifoFairnessAspect fifo;
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m"));
  a.set_arrival_seq(1);
  b.set_arrival_seq(2);
  fifo.on_arrive(a);
  fifo.on_arrive(b);
  EXPECT_EQ(fifo.precondition(b), Decision::kBlock);
  EXPECT_EQ(fifo.precondition(a), Decision::kResume);
  fifo.entry(a);
  EXPECT_EQ(fifo.precondition(b), Decision::kResume);
}

TEST(FifoFairnessTest, CancelUnblocksSuccessors) {
  FifoFairnessAspect fifo;
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m"));
  a.set_arrival_seq(1);
  b.set_arrival_seq(2);
  fifo.on_arrive(a);
  fifo.on_arrive(b);
  fifo.on_cancel(a);  // a gave up (timeout)
  EXPECT_EQ(fifo.precondition(b), Decision::kResume);
  EXPECT_EQ(fifo.waiting(), 1u);
}

TEST(PrioritySchedulingTest, HighestPriorityFirst) {
  PrioritySchedulingAspect sched;
  InvocationContext low(MethodId::of("m")), high(MethodId::of("m"));
  low.set_arrival_seq(1);
  low.set_priority(0);
  high.set_arrival_seq(2);
  high.set_priority(10);
  sched.on_arrive(low);
  sched.on_arrive(high);
  EXPECT_EQ(sched.precondition(low), Decision::kBlock)
      << "later but higher-priority arrival must win";
  EXPECT_EQ(sched.precondition(high), Decision::kResume);
  sched.entry(high);
  EXPECT_EQ(sched.precondition(low), Decision::kResume);
}

TEST(PrioritySchedulingTest, TiesBrokenByArrival) {
  PrioritySchedulingAspect sched;
  InvocationContext a(MethodId::of("m")), b(MethodId::of("m"));
  a.set_arrival_seq(1);
  b.set_arrival_seq(2);
  a.set_priority(5);
  b.set_priority(5);
  sched.on_arrive(a);
  sched.on_arrive(b);
  EXPECT_EQ(sched.precondition(a), Decision::kResume);
  EXPECT_EQ(sched.precondition(b), Decision::kBlock);
}

// End-to-end: waiters behind a closed gate are admitted strictly by
// priority once the gate opens.
TEST(PrioritySchedulingIntegrationTest, WaitersDrainByPriority) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("prio-drain");
  const auto opener_m = MethodId::of("prio-opener");

  auto gate_open = std::make_shared<bool>(false);
  // The scheduler must rule on ALL waiters, so it goes first; the "record"
  // aspect's entry hook captures ADMISSION order under the moderator lock
  // (bodies run outside the lock and may interleave arbitrarily).
  proxy.moderator().bank().set_kind_order(
      {AspectKind::of("sched"), AspectKind::of("gate"),
       AspectKind::of("record")});
  proxy.moderator().register_aspect(
      m, AspectKind::of("sched"),
      std::make_shared<PrioritySchedulingAspect>());
  proxy.moderator().register_aspect(
      m, AspectKind::of("gate"),
      std::make_shared<core::LambdaAspect>(
          "gate", [gate_open](InvocationContext&) {
            return *gate_open ? Decision::kResume : Decision::kBlock;
          }));
  proxy.moderator().register_aspect(
      opener_m, AspectKind::of("gate"),
      std::make_shared<core::LambdaAspect>(
          "opener", nullptr, nullptr,
          [gate_open](InvocationContext&) { *gate_open = true; }));

  auto admission_order = std::make_shared<std::vector<int>>();
  proxy.moderator().register_aspect(
      m, AspectKind::of("record"),
      std::make_shared<core::LambdaAspect>(
          "record", nullptr,
          [admission_order](core::InvocationContext& ctx) {
            admission_order->push_back(ctx.priority());
          }));

  {
    std::vector<std::jthread> threads;
    for (int prio = 1; prio <= 4; ++prio) {
      threads.emplace_back([&, prio] {
        proxy.call(m).priority(prio).run([](Dummy&) {});
      });
    }
    // Wait until every caller has genuinely blocked at the gate (each
    // blocking episode bumps block_events exactly once); then open it.
    // Priorities are distinct, so arrival order does not matter.
    while (proxy.moderator().stats(m).block_events < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Open the gate; the scheduler should now drain waiters 4,3,2,1.
    proxy.invoke(opener_m, [](Dummy&) {});
  }

  ASSERT_EQ(admission_order->size(), 4u);
  EXPECT_EQ(*admission_order, (std::vector<int>{4, 3, 2, 1}));
}

// The documented strictness property: with one shared scheduler, a front
// waiter blocked by another guard holds back later waiters.
TEST(PrioritySchedulingIntegrationTest, StrictOrderingHoldsBackFollowers) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto blocked_m = MethodId::of("strict-blocked");
  const auto free_m = MethodId::of("strict-free");
  auto sched = std::make_shared<PrioritySchedulingAspect>();
  proxy.moderator().bank().set_kind_order(
      {AspectKind::of("s2"), AspectKind::of("g2")});
  proxy.moderator().register_aspect(blocked_m, AspectKind::of("s2"), sched);
  proxy.moderator().register_aspect(free_m, AspectKind::of("s2"), sched);
  proxy.moderator().register_aspect(
      blocked_m, AspectKind::of("g2"),
      std::make_shared<core::LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));

  std::atomic<bool> high_started{false};
  std::jthread high([&] {
    high_started.store(true);
    // High priority, but its own gate never opens.
    (void)proxy.call(blocked_m)
        .priority(10)
        .within(std::chrono::milliseconds(100))
        .run([](Dummy&) {});
  });
  while (!high_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Low priority on the OTHER method: held back while high is waiting...
  auto r = proxy.call(free_m)
               .priority(1)
               .within(std::chrono::milliseconds(20))
               .run([](Dummy&) {});
  EXPECT_EQ(r.status, core::InvocationStatus::kTimedOut);

  high.join();  // high timed out and cancelled out of the scheduler
  auto r2 = proxy.call(free_m).priority(1).run([](Dummy&) {});
  EXPECT_TRUE(r2.ok()) << "cancelled front waiter must unblock followers";
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/quota.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::InvocationStatus;
using runtime::ManualClock;
using runtime::MethodId;

struct Dummy {
  int calls = 0;
};

RateLimitAspect::Options opts(double rate, double burst, bool block = false) {
  RateLimitAspect::Options o;
  o.tokens_per_second = rate;
  o.burst = burst;
  o.block_when_limited = block;
  return o;
}

TEST(RateLimitTest, BurstThenExhaustion) {
  ManualClock clock;
  core::ModeratorOptions mo;
  mo.clock = &clock;
  ComponentProxy<Dummy> proxy{Dummy{}, mo};
  const auto m = MethodId::of("rl-burst");
  proxy.moderator().register_aspect(
      m, runtime::kinds::quota(),
      std::make_shared<RateLimitAspect>(clock, opts(10.0, 3.0)));
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(proxy.invoke(m, [](Dummy& d) { ++d.calls; }).ok());
  }
  auto r = proxy.invoke(m, [](Dummy& d) { ++d.calls; });
  EXPECT_EQ(r.status, InvocationStatus::kAborted);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kResourceExhausted);
  EXPECT_EQ(proxy.component().calls, 3);
}

TEST(RateLimitTest, TokensRefillWithTime) {
  ManualClock clock;
  core::ModeratorOptions mo;
  mo.clock = &clock;
  ComponentProxy<Dummy> proxy{Dummy{}, mo};
  const auto m = MethodId::of("rl-refill");
  proxy.moderator().register_aspect(
      m, runtime::kinds::quota(),
      std::make_shared<RateLimitAspect>(clock, opts(10.0, 1.0)));
  EXPECT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_FALSE(proxy.invoke(m, [](Dummy&) {}).ok());
  clock.advance(std::chrono::milliseconds(100));  // exactly one token
  EXPECT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_FALSE(proxy.invoke(m, [](Dummy&) {}).ok());
}

TEST(RateLimitTest, BurstIsCapped) {
  ManualClock clock;
  RateLimitAspect aspect(clock, opts(10.0, 2.0));
  clock.advance(std::chrono::hours(1));  // long idle: bucket caps at burst
  core::InvocationContext ctx(MethodId::of("x"));
  EXPECT_EQ(aspect.precondition(ctx), core::Decision::kResume);
  aspect.entry(ctx);
  EXPECT_EQ(aspect.precondition(ctx), core::Decision::kResume);
  aspect.entry(ctx);
  EXPECT_EQ(aspect.precondition(ctx), core::Decision::kAbort);
}

TEST(RateLimitTest, AbortCarriesResourceExhausted) {
  ManualClock clock;
  RateLimitAspect aspect(clock, opts(1.0, 1.0));
  core::InvocationContext ctx(MethodId::of("x"));
  ASSERT_EQ(aspect.precondition(ctx), core::Decision::kResume);
  aspect.entry(ctx);
  core::InvocationContext ctx2(MethodId::of("x"));
  EXPECT_EQ(aspect.precondition(ctx2), core::Decision::kAbort);
  EXPECT_EQ(ctx2.abort_error()->code,
            runtime::ErrorCode::kResourceExhausted);
}

TEST(RateLimitTest, BlockModeReturnsBlock) {
  ManualClock clock;
  RateLimitAspect aspect(clock, opts(1.0, 1.0, /*block=*/true));
  core::InvocationContext ctx(MethodId::of("x"));
  ASSERT_EQ(aspect.precondition(ctx), core::Decision::kResume);
  aspect.entry(ctx);
  EXPECT_EQ(aspect.precondition(ctx), core::Decision::kBlock);
  clock.advance(std::chrono::seconds(2));
  EXPECT_EQ(aspect.precondition(ctx), core::Decision::kResume);
}

TEST(RateLimitTest, SteadyRateSustained) {
  ManualClock clock;
  core::ModeratorOptions mo;
  mo.clock = &clock;
  ComponentProxy<Dummy> proxy{Dummy{}, mo};
  const auto m = MethodId::of("rl-steady");
  proxy.moderator().register_aspect(
      m, runtime::kinds::quota(),
      std::make_shared<RateLimitAspect>(clock, opts(100.0, 1.0)));
  int ok = 0;
  for (int tick = 0; tick < 200; ++tick) {
    clock.advance(std::chrono::milliseconds(10));  // 1 token per tick
    if (proxy.invoke(m, [](Dummy&) {}).ok()) ++ok;
  }
  EXPECT_EQ(ok, 200);  // a compliant caller is never throttled
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/overload.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "aspects/bulkhead.hpp"
#include "aspects/quota.hpp"
#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using core::InvocationStatus;
using runtime::AspectKind;
using runtime::ManualClock;
using runtime::MethodId;

struct Dummy {
  int calls = 0;
};

AdaptiveLimiterAspect::Options limiter_opts(std::size_t initial,
                                            runtime::Duration target) {
  AdaptiveLimiterAspect::Options o;
  o.initial_limit = initial;
  o.latency_target = target;
  return o;
}

// One admitted invocation whose observed latency is `latency`: the context
// is enqueued at the current manual time, the clock advances, and the
// entry/postaction pair runs the way the moderator would run it.
void complete_one(AdaptiveLimiterAspect& aspect, ManualClock& clock,
                  runtime::Duration latency) {
  InvocationContext ctx(MethodId::of("ol"));
  ctx.set_enqueued_at(clock.now());
  ASSERT_EQ(aspect.precondition(ctx), Decision::kResume);
  aspect.entry(ctx);
  clock.advance(latency);
  aspect.postaction(ctx);
}

TEST(AdaptiveLimiterTest, UnderTargetLatencyGrowsLimitAdditively) {
  ManualClock clock;
  auto o = limiter_opts(4, std::chrono::milliseconds(10));
  o.increase_per_completion = 0.5;
  AdaptiveLimiterAspect aspect(clock, o);
  ASSERT_EQ(aspect.limit(), 4u);
  for (int i = 0; i < 4; ++i) {
    complete_one(aspect, clock, std::chrono::milliseconds(1));
  }
  EXPECT_EQ(aspect.limit(), 6u) << "4 fast completions at +0.5 each";
  EXPECT_LT(aspect.latency_ewma_ns(), 10e6);
}

TEST(AdaptiveLimiterTest, OverTargetLatencyShrinksLimitMultiplicatively) {
  ManualClock clock;
  auto o = limiter_opts(10, std::chrono::milliseconds(5));
  o.decrease_factor = 0.5;
  AdaptiveLimiterAspect aspect(clock, o);
  complete_one(aspect, clock, std::chrono::milliseconds(50));
  EXPECT_EQ(aspect.limit(), 5u) << "one over-target EWMA halves the limit";
}

TEST(AdaptiveLimiterTest, DecreaseIsRateLimitedToOnePerTargetWindow) {
  ManualClock clock;
  auto o = limiter_opts(16, std::chrono::milliseconds(100));
  o.decrease_factor = 0.5;
  AdaptiveLimiterAspect aspect(clock, o);
  // Two slow completions land inside one latency_target window: the first
  // decrease fires, the second is suppressed so a burst of queued
  // completions cannot crash the limit straight to the floor.
  InvocationContext a(MethodId::of("ol")), b(MethodId::of("ol"));
  a.set_enqueued_at(clock.now());
  b.set_enqueued_at(clock.now());
  aspect.entry(a);
  aspect.entry(b);
  clock.advance(std::chrono::milliseconds(500));
  aspect.postaction(a);
  EXPECT_EQ(aspect.limit(), 8u);
  clock.advance(std::chrono::milliseconds(10));  // still inside the window
  aspect.postaction(b);
  EXPECT_EQ(aspect.limit(), 8u) << "second decrease suppressed";
  EXPECT_EQ(aspect.in_flight(), 0u);
}

TEST(AdaptiveLimiterTest, LimitStaysWithinConfiguredBounds) {
  ManualClock clock;
  auto o = limiter_opts(2, std::chrono::milliseconds(1));
  o.min_limit = 2;
  o.max_limit = 3;
  o.decrease_factor = 0.1;
  o.increase_per_completion = 10.0;
  AdaptiveLimiterAspect aspect(clock, o);
  complete_one(aspect, clock, std::chrono::milliseconds(100));
  EXPECT_EQ(aspect.limit(), 2u) << "clamped at min_limit";
  // Let the EWMA recover below target, then grow: clamped at max_limit.
  // (alpha = 0.3: decaying a 100ms sample under the 1ms target takes
  // ceil(log(0.01)/log(0.7)) = 13 fast completions; 20 leaves room to grow.)
  for (int i = 0; i < 20; ++i) {
    complete_one(aspect, clock, std::chrono::microseconds(1));
  }
  EXPECT_EQ(aspect.limit(), 3u) << "clamped at max_limit";
}

TEST(AdaptiveLimiterTest, BlocksAtLimitWithoutShedPolicy) {
  ManualClock clock;
  AdaptiveLimiterAspect aspect(clock, limiter_opts(1, std::chrono::seconds(1)));
  InvocationContext in(MethodId::of("ol"));
  ASSERT_EQ(aspect.precondition(in), Decision::kResume);
  aspect.entry(in);
  InvocationContext waiting(MethodId::of("ol"));
  EXPECT_EQ(aspect.precondition(waiting), Decision::kBlock);
  aspect.postaction(in);
  EXPECT_EQ(aspect.precondition(waiting), Decision::kResume);
}

TEST(AdaptiveLimiterTest, ShedsLowPriorityButBlocksProtectedPriority) {
  ManualClock clock;
  auto o = limiter_opts(1, std::chrono::seconds(1));
  o.shed = ShedPolicy{.enabled = true, .protect_priority = 1};
  AdaptiveLimiterAspect aspect(clock, o);
  InvocationContext in(MethodId::of("ol"));
  aspect.entry(in);

  InvocationContext low(MethodId::of("ol"));
  low.set_priority(0);
  EXPECT_EQ(aspect.precondition(low), Decision::kAbort);
  EXPECT_EQ(low.abort_error()->code, runtime::ErrorCode::kOverloaded);
  EXPECT_EQ(low.note("shed.by"), "adaptive-limiter");
  EXPECT_EQ(low.note("shed.reason"), "adaptive-limit");

  InvocationContext high(MethodId::of("ol"));
  high.set_priority(1);
  EXPECT_EQ(aspect.precondition(high), Decision::kBlock)
      << "protected priority waits instead of being shed";
}

TEST(AdaptiveLimiterTest, ShedsAreCountedOncePerCancelledInvocation) {
  ManualClock clock;
  auto o = limiter_opts(1, std::chrono::seconds(1));
  o.shed = ShedPolicy{.enabled = true};
  runtime::Registry metrics;
  o.metrics = &metrics;
  AdaptiveLimiterAspect aspect(clock, o);
  InvocationContext in(MethodId::of("ol"));
  aspect.entry(in);

  InvocationContext shed_ctx(MethodId::of("ol"));
  ASSERT_EQ(aspect.precondition(shed_ctx), Decision::kAbort);
  aspect.on_cancel(shed_ctx);
  EXPECT_EQ(aspect.sheds(), 1u);
  EXPECT_EQ(metrics.counter("overload.shed").value(), 1u);

  // A cancel the limiter did NOT cause (another aspect's veto, a timeout)
  // must not inflate the shed count.
  InvocationContext other(MethodId::of("ol"));
  aspect.on_cancel(other);
  EXPECT_EQ(aspect.sheds(), 1u);
  EXPECT_EQ(metrics.gauge("overload.limit").value(), 1);
}

TEST(AdaptiveLimiterIntegrationTest, ShedIsStructuredEndToEnd) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("ol-e2e");
  auto o = limiter_opts(1, std::chrono::seconds(1));
  o.shed = ShedPolicy{.enabled = true, .protect_priority = 1};
  auto limiter = std::make_shared<AdaptiveLimiterAspect>(
      runtime::RealClock::instance(), o);
  proxy.moderator().register_aspect(m, AspectKind::of("overload"), limiter);

  std::atomic<bool> holder_in{false};
  std::atomic<bool> release{false};
  std::jthread holder([&] {
    (void)proxy.call(m).priority(1).run([&](Dummy& d) {
      ++d.calls;
      holder_in.store(true);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (!holder_in.load()) std::this_thread::yield();

  // The limit is saturated: a low-priority caller is refused immediately
  // with the structured overload verdict — no waiting, body never runs.
  auto r = proxy.call(m).priority(0).run([](Dummy& d) { ++d.calls; });
  EXPECT_EQ(r.status, InvocationStatus::kAborted);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kOverloaded);
  EXPECT_EQ(limiter->sheds(), 1u);
  release.store(true);
  holder.join();
  EXPECT_EQ(proxy.component().calls, 1) << "shed body must not execute";
  EXPECT_EQ(limiter->in_flight(), 0u);
}

TEST(BulkheadShedTest, OverBudgetClassShedsUnprotectedCallers) {
  BulkheadAspect bulkhead(1, ShedPolicy{.enabled = true,
                                        .protect_priority = 1});
  InvocationContext in(MethodId::of("bh"));
  ASSERT_EQ(bulkhead.precondition(in), Decision::kResume);
  bulkhead.entry(in);

  InvocationContext low(MethodId::of("bh"));
  EXPECT_EQ(bulkhead.precondition(low), Decision::kAbort);
  EXPECT_EQ(low.abort_error()->code, runtime::ErrorCode::kOverloaded);
  EXPECT_EQ(low.note("shed.by"), "bulkhead");
  EXPECT_EQ(low.note("shed.reason"), "class-budget");

  InvocationContext high(MethodId::of("bh"));
  high.set_priority(2);
  EXPECT_EQ(bulkhead.precondition(high), Decision::kBlock);
}

TEST(RateLimitShedTest, BlockModeShedsUnprotectedCallers) {
  ManualClock clock;
  RateLimitAspect::Options o;
  o.tokens_per_second = 1.0;
  o.burst = 1.0;
  o.block_when_limited = true;
  o.shed = ShedPolicy{.enabled = true, .protect_priority = 1};
  RateLimitAspect aspect(clock, o);

  InvocationContext first(MethodId::of("rl"));
  ASSERT_EQ(aspect.precondition(first), Decision::kResume);
  aspect.entry(first);  // bucket now empty

  InvocationContext low(MethodId::of("rl"));
  EXPECT_EQ(aspect.precondition(low), Decision::kAbort);
  EXPECT_EQ(low.abort_error()->code, runtime::ErrorCode::kOverloaded);
  EXPECT_EQ(low.note("shed.by"), "rate-limit");

  InvocationContext high(MethodId::of("rl"));
  high.set_priority(3);
  EXPECT_EQ(aspect.precondition(high), Decision::kBlock)
      << "protected callers keep the pre-shed blocking behavior";
}

}  // namespace
}  // namespace amf::aspects

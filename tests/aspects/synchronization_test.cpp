#include "aspects/synchronization.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Probe {
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  void enter_and_dwell(std::chrono::microseconds dwell) {
    const int now = concurrent.fetch_add(1) + 1;
    int prev = max_concurrent.load();
    while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(dwell);
    concurrent.fetch_sub(1);
  }
};

struct Dummy {};

TEST(MutualExclusionAspectTest, GuardBlocksWhenSaturated) {
  MutualExclusionAspect aspect(1);
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
  aspect.entry(ctx);
  EXPECT_EQ(aspect.active(), 1u);
  EXPECT_EQ(aspect.precondition(ctx), Decision::kBlock);
  aspect.postaction(ctx);
  EXPECT_EQ(aspect.active(), 0u);
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
}

TEST(MutualExclusionAspectTest, LimitNAllowsNConcurrent) {
  MutualExclusionAspect aspect(3);
  InvocationContext ctx(MethodId::of("m"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
    aspect.entry(ctx);
  }
  EXPECT_EQ(aspect.precondition(ctx), Decision::kBlock);
}

class MutexConcurrencySweep : public ::testing::TestWithParam<int> {};

TEST_P(MutexConcurrencySweep, NeverExceedsLimit) {
  const int limit = GetParam();
  auto probe = std::make_shared<Probe>();
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("sweep-" + std::to_string(limit));
  proxy.moderator().register_aspect(
      m, AspectKind::of("mx"),
      std::make_shared<MutualExclusionAspect>(limit));
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          proxy.invoke(m, [&](Dummy&) {
            probe->enter_and_dwell(std::chrono::microseconds(200));
          });
        }
      });
    }
  }
  EXPECT_LE(probe->max_concurrent.load(), limit);
  EXPECT_GE(probe->max_concurrent.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Limits, MutexConcurrencySweep,
                         ::testing::Values(1, 2, 4));

TEST(MutualExclusionAspectTest, GroupExclusionAcrossMethods) {
  auto probe = std::make_shared<Probe>();
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m1 = MethodId::of("grp-a");
  const auto m2 = MethodId::of("grp-b");
  auto shared = std::make_shared<MutualExclusionAspect>(1);
  proxy.moderator().register_aspect(m1, AspectKind::of("mx"), shared);
  proxy.moderator().register_aspect(m2, AspectKind::of("mx"), shared);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const auto m = t % 2 == 0 ? m1 : m2;
        for (int i = 0; i < 50; ++i) {
          proxy.invoke(m, [&](Dummy&) {
            probe->enter_and_dwell(std::chrono::microseconds(100));
          });
        }
      });
    }
  }
  EXPECT_EQ(probe->max_concurrent.load(), 1);
}

TEST(BoundedResourceAspectTest, ProducerGuardRespectsCapacity) {
  auto state = std::make_shared<BoundedResourceState>(2);
  BoundedResourceAspect producer(BoundedResourceAspect::Role::kProducer,
                                 state);
  InvocationContext ctx(MethodId::of("open"));
  // Fill the two slots (entry+post pairs: produce to completion).
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(producer.precondition(ctx), Decision::kResume);
    producer.entry(ctx);
    producer.postaction(ctx);
  }
  EXPECT_EQ(state->committed, 2u);
  EXPECT_EQ(producer.precondition(ctx), Decision::kBlock);
}

TEST(BoundedResourceAspectTest, ConsumerGuardRequiresCommittedItems) {
  auto state = std::make_shared<BoundedResourceState>(4);
  BoundedResourceAspect producer(BoundedResourceAspect::Role::kProducer,
                                 state);
  BoundedResourceAspect consumer(BoundedResourceAspect::Role::kConsumer,
                                 state);
  InvocationContext ctx(MethodId::of("x"));
  EXPECT_EQ(consumer.precondition(ctx), Decision::kBlock);  // empty

  // A producer that has ENTERED but not POSTED does not feed consumers.
  ASSERT_EQ(producer.precondition(ctx), Decision::kResume);
  producer.entry(ctx);
  EXPECT_EQ(consumer.precondition(ctx), Decision::kBlock)
      << "in-flight production must not be consumable (repair D1)";
  producer.postaction(ctx);
  EXPECT_EQ(consumer.precondition(ctx), Decision::kResume);
}

TEST(BoundedResourceAspectTest, SingleActiveProducerByDefault) {
  auto state = std::make_shared<BoundedResourceState>(10);
  BoundedResourceAspect producer(BoundedResourceAspect::Role::kProducer,
                                 state);
  InvocationContext ctx(MethodId::of("x"));
  ASSERT_EQ(producer.precondition(ctx), Decision::kResume);
  producer.entry(ctx);
  EXPECT_EQ(producer.precondition(ctx), Decision::kBlock)
      << "paper's ActiveOpen == 0 rule";
  producer.postaction(ctx);
  EXPECT_EQ(producer.precondition(ctx), Decision::kResume);
}

TEST(BoundedResourceAspectTest, ConsumerReleasesSlotOnlyAtPost) {
  auto state = std::make_shared<BoundedResourceState>(1);
  BoundedResourceAspect producer(BoundedResourceAspect::Role::kProducer,
                                 state);
  BoundedResourceAspect consumer(BoundedResourceAspect::Role::kConsumer,
                                 state);
  InvocationContext ctx(MethodId::of("x"));
  ASSERT_EQ(producer.precondition(ctx), Decision::kResume);
  producer.entry(ctx);
  producer.postaction(ctx);  // 1 committed, slot full

  ASSERT_EQ(consumer.precondition(ctx), Decision::kResume);
  consumer.entry(ctx);
  // Consumer claimed the item but still owns the slot: producer must wait.
  EXPECT_EQ(producer.precondition(ctx), Decision::kBlock);
  consumer.postaction(ctx);
  EXPECT_EQ(producer.precondition(ctx), Decision::kResume);
}

TEST(BoundedResourceAspectTest, InvariantHoldsUnderRandomSchedule) {
  auto state = std::make_shared<BoundedResourceState>(3);
  BoundedResourceAspect producer(BoundedResourceAspect::Role::kProducer,
                                 state, 2);
  BoundedResourceAspect consumer(BoundedResourceAspect::Role::kConsumer,
                                 state, 2);
  InvocationContext ctx(MethodId::of("x"));
  // Drive a random but legal single-threaded schedule and check the
  // invariant after every step.
  std::uint64_t seed = 42;
  int in_flight_p = 0, in_flight_c = 0;
  auto check = [&] {
    EXPECT_LE(state->committed, state->reserved);
    EXPECT_LE(state->reserved, state->capacity);
  };
  for (int step = 0; step < 2000; ++step) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    switch ((seed >> 33) % 4) {
      case 0:
        if (producer.precondition(ctx) == Decision::kResume) {
          producer.entry(ctx);
          ++in_flight_p;
        }
        break;
      case 1:
        if (in_flight_p > 0) {
          producer.postaction(ctx);
          --in_flight_p;
        }
        break;
      case 2:
        if (consumer.precondition(ctx) == Decision::kResume) {
          consumer.entry(ctx);
          ++in_flight_c;
        }
        break;
      default:
        if (in_flight_c > 0) {
          consumer.postaction(ctx);
          --in_flight_c;
        }
    }
    check();
  }
}

}  // namespace
}  // namespace amf::aspects

#include "aspects/bulkhead.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/framework.hpp"

namespace amf::aspects {
namespace {

using core::ComponentProxy;
using core::Decision;
using core::InvocationContext;
using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

InvocationContext ctx_for(std::string user) {
  InvocationContext ctx(MethodId::of("bh"));
  ctx.set_principal(runtime::Principal{std::move(user), {}, "tok"});
  return ctx;
}

TEST(BulkheadTest, PerClassLimitEnforced) {
  BulkheadAspect bulkhead(2);
  auto a1 = ctx_for("ann"), a2 = ctx_for("ann"), a3 = ctx_for("ann");
  ASSERT_EQ(bulkhead.precondition(a1), Decision::kResume);
  bulkhead.entry(a1);
  ASSERT_EQ(bulkhead.precondition(a2), Decision::kResume);
  bulkhead.entry(a2);
  EXPECT_EQ(bulkhead.precondition(a3), Decision::kBlock);
  EXPECT_EQ(bulkhead.active("ann"), 2u);
}

TEST(BulkheadTest, ClassesAreIsolated) {
  BulkheadAspect bulkhead(1);
  auto ann = ctx_for("ann"), bob = ctx_for("bob"), ann2 = ctx_for("ann");
  ASSERT_EQ(bulkhead.precondition(ann), Decision::kResume);
  bulkhead.entry(ann);
  EXPECT_EQ(bulkhead.precondition(ann2), Decision::kBlock)
      << "ann saturated her budget";
  EXPECT_EQ(bulkhead.precondition(bob), Decision::kResume)
      << "bob must be unaffected by ann's saturation";
}

TEST(BulkheadTest, PostactionReleasesBudget) {
  BulkheadAspect bulkhead(1);
  auto a1 = ctx_for("ann"), a2 = ctx_for("ann");
  bulkhead.entry(a1);
  EXPECT_EQ(bulkhead.precondition(a2), Decision::kBlock);
  bulkhead.postaction(a1);
  EXPECT_EQ(bulkhead.precondition(a2), Decision::kResume);
  EXPECT_EQ(bulkhead.active("ann"), 0u);
}

TEST(BulkheadTest, CustomClassifier) {
  // Isolate by a context note instead of the principal.
  BulkheadAspect bulkhead(1, [](const InvocationContext& ctx) {
    return ctx.note("tenant").value_or("default");
  });
  InvocationContext t1(MethodId::of("bh"));
  t1.set_note("tenant", "acme");
  InvocationContext t2(MethodId::of("bh"));
  t2.set_note("tenant", "globex");
  bulkhead.entry(t1);
  EXPECT_EQ(bulkhead.precondition(t2), Decision::kResume);
  InvocationContext t3(MethodId::of("bh"));
  t3.set_note("tenant", "acme");
  EXPECT_EQ(bulkhead.precondition(t3), Decision::kBlock);
}

TEST(BulkheadIntegrationTest, NoisyNeighborCannotStarveOthers) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("bh-e2e");
  proxy.moderator().register_aspect(m, AspectKind::of("bh"),
                                    std::make_shared<BulkheadAspect>(1));

  // A "noisy" caller holds its single slot for a long time; a different
  // caller must get through immediately.
  std::atomic<bool> noisy_in{false};
  std::jthread noisy([&] {
    (void)proxy.call(m)
        .as(runtime::Principal{"noisy", {}, "t"})
        .run([&](Dummy&) {
          noisy_in.store(true);
          std::this_thread::sleep_for(std::chrono::milliseconds(80));
        });
  });
  while (!noisy_in.load()) std::this_thread::yield();

  auto r = proxy.call(m)
               .as(runtime::Principal{"quiet", {}, "t"})
               .within(std::chrono::milliseconds(40))
               .run([](Dummy&) {});
  EXPECT_TRUE(r.ok()) << "quiet caller must not wait behind noisy's slot";

  // But a second noisy call does wait behind the first.
  auto r2 = proxy.call(m)
                .as(runtime::Principal{"noisy", {}, "t"})
                .within(std::chrono::milliseconds(10))
                .run([](Dummy&) {});
  EXPECT_EQ(r2.status, core::InvocationStatus::kTimedOut);
}

}  // namespace
}  // namespace amf::aspects

#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace amf::net {
namespace {

TEST(DedupCacheTest, RemembersAndReplays) {
  DedupCache cache;
  EXPECT_EQ(cache.lookup("r1"), std::nullopt);
  Envelope resp;
  resp.put("x", "1");
  cache.remember("r1", resp);
  auto hit = cache.lookup("r1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get("x"), "1");
}

TEST(DedupCacheTest, EvictsOldestAtCapacity) {
  DedupCache cache(2);
  cache.remember("a", Envelope{});
  cache.remember("b", Envelope{});
  cache.remember("c", Envelope{});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup("a"), std::nullopt);
  EXPECT_TRUE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
}

TEST(WithDedupTest, HandlerRunsOncePerRequestId) {
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    executions.fetch_add(1);
    Envelope r;
    r.put_u64("n", static_cast<std::uint64_t>(executions.load()));
    return r;
  });
  Envelope req;
  req.put("request.id", "dup-1");
  EXPECT_EQ(handler(req).get_u64("n"), 1u);
  EXPECT_EQ(handler(req).get_u64("n"), 1u) << "duplicate must replay memo";
  EXPECT_EQ(executions.load(), 1);
  Envelope req2;
  req2.put("request.id", "dup-2");
  EXPECT_EQ(handler(req2).get_u64("n"), 2u);
}

TEST(WithDedupTest, ErrorResponsesAreNotMemoized) {
  // A handler that fails once then succeeds: the retry must re-execute
  // (failed executions are assumed effect-free), and only the success is
  // memoized.
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    Envelope r;
    if (executions.fetch_add(1) == 0) r.put("error", "transient");
    return r;
  });
  Envelope req;
  req.put("request.id", "flaky-1");
  EXPECT_TRUE(handler(req).is_error());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(handler(req).is_error());  // re-executed
  EXPECT_EQ(executions.load(), 2);
  EXPECT_FALSE(handler(req).is_error());  // now memoized
  EXPECT_EQ(executions.load(), 2);
}

TEST(WithDedupTest, UnstampedRequestsPassThrough) {
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    executions.fetch_add(1);
    return Envelope{};
  });
  Envelope req;  // no request.id
  (void)handler(req);
  (void)handler(req);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RetryingClientTest, SucceedsFirstTryOnReliableLink) {
  Transport transport;
  RpcServer server(transport, "srv");
  server.register_method("echo", [](const Envelope& req) {
    Envelope r;
    r.put("echo", req.get("msg").value_or(""));
    return r;
  });
  server.start();
  RetryingClient client(transport, "cli");
  Envelope req;
  req.method = "echo";
  req.put("msg", "hi");
  auto r = client.call("srv", std::move(req));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get("echo"), "hi");
  EXPECT_EQ(client.last_attempts(), 1);
}

TEST(RetryingClientTest, GivesUpAfterMaxAttempts) {
  Transport::Options lossy;
  lossy.drop_probability = 1.0;  // black hole
  Transport transport(lossy);
  (void)transport.open("srv");  // endpoint exists; messages vanish
  RetryingClient::Options opts;
  opts.max_attempts = 3;
  opts.attempt_timeout = std::chrono::milliseconds(10);
  opts.backoff = std::chrono::milliseconds(1);
  RetryingClient client(transport, "cli", opts);
  Envelope req;
  req.method = "echo";
  auto r = client.call("srv", std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kTimeout);
  EXPECT_EQ(client.last_attempts(), 3);
  EXPECT_GE(transport.dropped(), 3u);
}

TEST(RetryingClientTest, NonTimeoutErrorsAreNotRetried) {
  Transport transport;
  RetryingClient client(transport, "cli");
  Envelope req;
  req.method = "echo";
  auto r = client.call("ghost-endpoint", std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kUnavailable);
  EXPECT_EQ(client.last_attempts(), 1);
}

TEST(RetryingClientTest, ExactlyOnceEffectOverLossyLink) {
  // 30% loss each way; with retries every logical request must execute
  // EXACTLY once server-side (dedup) and eventually succeed client-side.
  Transport::Options lossy;
  lossy.drop_probability = 0.3;
  lossy.seed = 7;
  Transport transport(lossy);
  RpcServer server(transport, "srv");
  DedupCache cache;
  std::atomic<int> executions{0};
  server.register_method(
      "inc", with_dedup(cache, [&](const Envelope&) {
        executions.fetch_add(1);
        return Envelope{};
      }));
  server.start();

  RetryingClient::Options opts;
  opts.max_attempts = 30;
  opts.attempt_timeout = std::chrono::milliseconds(20);
  opts.backoff = std::chrono::milliseconds(1);
  RetryingClient client(transport, "cli", opts);

  constexpr int kRequests = 50;
  int succeeded = 0;
  for (int i = 0; i < kRequests; ++i) {
    Envelope req;
    req.method = "inc";
    if (client.call("srv", std::move(req)).ok()) ++succeeded;
  }
  EXPECT_EQ(succeeded, kRequests);
  EXPECT_EQ(executions.load(), kRequests)
      << "dedup must suppress re-execution of retried requests";
  EXPECT_GT(transport.dropped(), 0u) << "the link must actually be lossy";
}

}  // namespace
}  // namespace amf::net

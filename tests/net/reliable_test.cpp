#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>

#include "net/propagation.hpp"
#include "runtime/clock.hpp"

namespace amf::net {
namespace {

TEST(DedupCacheTest, RemembersAndReplays) {
  DedupCache cache;
  EXPECT_EQ(cache.lookup("r1"), std::nullopt);
  Envelope resp;
  resp.put("x", "1");
  cache.remember("r1", resp);
  auto hit = cache.lookup("r1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->get("x"), "1");
}

TEST(DedupCacheTest, EvictsOldestAtCapacity) {
  DedupCache cache(2);
  cache.remember("a", Envelope{});
  cache.remember("b", Envelope{});
  cache.remember("c", Envelope{});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup("a"), std::nullopt);
  EXPECT_TRUE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
}

TEST(DedupCacheTest, EvictionForgetsDuplicatesNotJustEntries) {
  // Stale-replay regression: once FIFO eviction drops a request id, a
  // late duplicate of that id is indistinguishable from a fresh request
  // and EXECUTES AGAIN. That is the documented at-most-once boundary —
  // dedup only holds while the id is within the cache window — and the
  // re-execution must produce (and re-memoize) a fresh response rather
  // than replay garbage or crash.
  DedupCache cache(2);
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    Envelope r;
    r.put_u64("n", static_cast<std::uint64_t>(executions.fetch_add(1) + 1));
    return r;
  });
  Envelope old_req;
  old_req.put("request.id", "stale-a");
  EXPECT_EQ(handler(old_req).get_u64("n"), 1u);
  // Two newer ids push "stale-a" out of the FIFO window.
  Envelope b, c;
  b.put("request.id", "stale-b");
  c.put("request.id", "stale-c");
  (void)handler(b);
  (void)handler(c);
  EXPECT_EQ(cache.lookup("stale-a"), std::nullopt) << "must be evicted";

  // The late duplicate re-executes (n=4, not the stale n=1)...
  EXPECT_EQ(handler(old_req).get_u64("n"), 4u);
  EXPECT_EQ(executions.load(), 4);
  // ...and is memoized afresh, so an immediate retry replays n=4.
  EXPECT_EQ(handler(old_req).get_u64("n"), 4u);
  EXPECT_EQ(executions.load(), 4);
}

TEST(DedupCacheTest, OverwriteDoesNotDoubleCountEviction) {
  // remember() for an id already in the window must not re-push it onto
  // the FIFO: a duplicate would later evict the map entry of a DIFFERENT
  // request sharing the deque slot's id, shrinking the effective window.
  DedupCache cache(2);
  cache.remember("x", Envelope{});
  cache.remember("x", Envelope{});  // overwrite, not a second FIFO slot
  cache.remember("y", Envelope{});
  EXPECT_EQ(cache.size(), 2u);
  cache.remember("z", Envelope{});  // evicts x (oldest), keeps y and z
  EXPECT_EQ(cache.lookup("x"), std::nullopt);
  EXPECT_TRUE(cache.lookup("y").has_value());
  EXPECT_TRUE(cache.lookup("z").has_value());
}

TEST(WithDedupTest, HandlerRunsOncePerRequestId) {
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    executions.fetch_add(1);
    Envelope r;
    r.put_u64("n", static_cast<std::uint64_t>(executions.load()));
    return r;
  });
  Envelope req;
  req.put("request.id", "dup-1");
  EXPECT_EQ(handler(req).get_u64("n"), 1u);
  EXPECT_EQ(handler(req).get_u64("n"), 1u) << "duplicate must replay memo";
  EXPECT_EQ(executions.load(), 1);
  Envelope req2;
  req2.put("request.id", "dup-2");
  EXPECT_EQ(handler(req2).get_u64("n"), 2u);
}

TEST(WithDedupTest, ErrorResponsesAreNotMemoized) {
  // A handler that fails once then succeeds: the retry must re-execute
  // (failed executions are assumed effect-free), and only the success is
  // memoized.
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    Envelope r;
    if (executions.fetch_add(1) == 0) r.put("error", "transient");
    return r;
  });
  Envelope req;
  req.put("request.id", "flaky-1");
  EXPECT_TRUE(handler(req).is_error());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(handler(req).is_error());  // re-executed
  EXPECT_EQ(executions.load(), 2);
  EXPECT_FALSE(handler(req).is_error());  // now memoized
  EXPECT_EQ(executions.load(), 2);
}

TEST(WithDedupTest, UnstampedRequestsPassThrough) {
  DedupCache cache;
  std::atomic<int> executions{0};
  auto handler = with_dedup(cache, [&](const Envelope&) {
    executions.fetch_add(1);
    return Envelope{};
  });
  Envelope req;  // no request.id
  (void)handler(req);
  (void)handler(req);
  EXPECT_EQ(executions.load(), 2);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RetryingClientTest, SucceedsFirstTryOnReliableLink) {
  Transport transport;
  RpcServer server(transport, "srv");
  server.register_method("echo", [](const Envelope& req) {
    Envelope r;
    r.put("echo", req.get("msg").value_or(""));
    return r;
  });
  server.start();
  RetryingClient client(transport, "cli");
  Envelope req;
  req.method = "echo";
  req.put("msg", "hi");
  auto r = client.call("srv", std::move(req));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get("echo"), "hi");
  EXPECT_EQ(client.last_attempts(), 1);
}

TEST(RetryingClientTest, GivesUpAfterMaxAttempts) {
  Transport::Options lossy;
  lossy.drop_probability = 1.0;  // black hole
  Transport transport(lossy);
  (void)transport.open("srv");  // endpoint exists; messages vanish
  RetryingClient::Options opts;
  opts.max_attempts = 3;
  opts.attempt_timeout = std::chrono::milliseconds(10);
  opts.backoff = std::chrono::milliseconds(1);
  RetryingClient client(transport, "cli", opts);
  Envelope req;
  req.method = "echo";
  auto r = client.call("srv", std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kTimeout);
  EXPECT_EQ(client.last_attempts(), 3);
  EXPECT_GE(transport.dropped(), 3u);
}

TEST(RetryingClientTest, NonTimeoutErrorsAreNotRetried) {
  Transport transport;
  RetryingClient client(transport, "cli");
  Envelope req;
  req.method = "echo";
  auto r = client.call("ghost-endpoint", std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kUnavailable);
  EXPECT_EQ(client.last_attempts(), 1);
}

TEST(RetryingClientTest, ExactlyOnceEffectOverLossyLink) {
  // 30% loss each way; with retries every logical request must execute
  // EXACTLY once server-side (dedup) and eventually succeed client-side.
  Transport::Options lossy;
  lossy.drop_probability = 0.3;
  lossy.seed = 7;
  Transport transport(lossy);
  RpcServer server(transport, "srv");
  DedupCache cache;
  std::atomic<int> executions{0};
  server.register_method(
      "inc", with_dedup(cache, [&](const Envelope&) {
        executions.fetch_add(1);
        return Envelope{};
      }));
  server.start();

  RetryingClient::Options opts;
  opts.max_attempts = 30;
  opts.attempt_timeout = std::chrono::milliseconds(20);
  opts.backoff = std::chrono::milliseconds(1);
  RetryingClient client(transport, "cli", opts);

  constexpr int kRequests = 50;
  int succeeded = 0;
  for (int i = 0; i < kRequests; ++i) {
    Envelope req;
    req.method = "inc";
    if (client.call("srv", std::move(req)).ok()) ++succeeded;
  }
  EXPECT_EQ(succeeded, kRequests);
  EXPECT_EQ(executions.load(), kRequests)
      << "dedup must suppress re-execution of retried requests";
  EXPECT_GT(transport.dropped(), 0u) << "the link must actually be lossy";
}

TEST(RetryingClientTest, BackoffJitterStaysInEnvelope) {
  Transport transport;
  RetryingClient::Options opts;
  opts.backoff = std::chrono::milliseconds(10);
  opts.backoff_jitter = 0.5;
  RetryingClient client(transport, "cli", opts);
  for (int attempt = 1; attempt <= 6; ++attempt) {
    const auto full = opts.backoff * attempt;
    const auto sleep = client.backoff_for(attempt);
    EXPECT_LE(sleep, full) << "attempt " << attempt;
    EXPECT_GE(sleep, full / 2) << "attempt " << attempt;
  }
}

TEST(RetryingClientTest, JitterDesynchronizesClients) {
  // The point of the jitter: clients that timed out together must not
  // sleep identically and re-collide. Distinct seeds ⇒ distinct draws.
  Transport transport;
  RetryingClient::Options a_opts, b_opts;
  a_opts.jitter_seed = 1;
  b_opts.jitter_seed = 2;
  RetryingClient a(transport, "a", a_opts), b(transport, "b", b_opts);
  bool diverged = false;
  for (int attempt = 1; attempt <= 8 && !diverged; ++attempt) {
    diverged = a.backoff_for(attempt) != b.backoff_for(attempt);
  }
  EXPECT_TRUE(diverged);
}

TEST(RetryingClientTest, ZeroJitterIsExact) {
  Transport transport;
  RetryingClient::Options opts;
  opts.backoff = std::chrono::milliseconds(4);
  opts.backoff_jitter = 0.0;
  RetryingClient client(transport, "cli", opts);
  EXPECT_EQ(client.backoff_for(3), std::chrono::milliseconds(12));
}

TEST(RetryBudgetTest, EmptyBucketSuppressesRetries) {
  Transport::Options lossy;
  lossy.drop_probability = 1.0;  // black hole: every attempt times out
  Transport transport(lossy);
  (void)transport.open("srv");
  RetryingClient::Options opts;
  opts.max_attempts = 5;
  opts.attempt_timeout = std::chrono::milliseconds(10);
  opts.backoff = std::chrono::milliseconds(1);
  opts.retry_budget = 1.0;  // one retry, then the bucket is dry
  opts.retry_tokens_per_second = 0.0001;  // effectively no refill in-test
  RetryingClient client(transport, "cli", opts);

  Envelope req;
  req.method = "echo";
  auto r = client.call("srv", std::move(req));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(client.last_attempts(), 2)
      << "first attempt + the single budgeted retry";
  EXPECT_EQ(client.retries_suppressed(), 1u);

  // The next call gets NO retry at all — storms cannot amplify.
  Envelope req2;
  req2.method = "echo";
  ASSERT_FALSE(client.call("srv", std::move(req2)).ok());
  EXPECT_EQ(client.last_attempts(), 1);
  EXPECT_EQ(client.retries_suppressed(), 2u);
}

TEST(RetryBudgetTest, BucketRefillsOverTime) {
  Transport::Options lossy;
  lossy.drop_probability = 1.0;
  Transport transport(lossy);
  (void)transport.open("srv");
  runtime::ManualClock clock;
  RetryingClient::Options opts;
  opts.max_attempts = 4;
  opts.attempt_timeout = std::chrono::milliseconds(5);
  opts.backoff = std::chrono::milliseconds(1);
  opts.retry_budget = 1.0;
  opts.retry_tokens_per_second = 0.1;
  opts.clock = &clock;
  RetryingClient client(transport, "cli", opts);

  Envelope req;
  req.method = "echo";
  ASSERT_FALSE(client.call("srv", std::move(req)).ok());
  EXPECT_EQ(client.last_attempts(), 2) << "budget spent";

  clock.advance(std::chrono::seconds(10));  // 10s × 0.1/s = 1 token back
  Envelope req2;
  req2.method = "echo";
  ASSERT_FALSE(client.call("srv", std::move(req2)).ok());
  EXPECT_EQ(client.last_attempts(), 2) << "refilled token buys one retry";
}

TEST(RetryDeadlineTest, ExhaustedDeadlineFailsWithoutAnAttempt) {
  Transport transport;
  (void)transport.open("srv");
  runtime::ManualClock clock;
  RetryingClient::Options opts;
  opts.clock = &clock;
  RetryingClient client(transport, "cli", opts);
  Envelope req;
  req.method = "echo";
  auto r = client.call("srv", std::move(req),
                       clock.now() - std::chrono::milliseconds(1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(client.last_attempts(), 0) << "no wire traffic for dead work";
}

TEST(RetryDeadlineTest, DeadlineClipsAttemptTimeoutAndStopsRetries) {
  Transport::Options lossy;
  lossy.drop_probability = 1.0;
  Transport transport(lossy);
  (void)transport.open("srv");
  RetryingClient::Options opts;
  opts.max_attempts = 10;
  opts.attempt_timeout = std::chrono::seconds(10);  // way past the deadline
  opts.backoff = std::chrono::milliseconds(1);
  RetryingClient client(transport, "cli", opts);

  Envelope req;
  req.method = "echo";
  const auto t0 = std::chrono::steady_clock::now();
  auto r = client.call(
      "srv", std::move(req),
      runtime::RealClock::instance().now() + std::chrono::milliseconds(100));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_FALSE(r.ok());
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "attempt timeouts must be clipped to the remaining budget";
  EXPECT_LT(client.last_attempts(), 10);
  EXPECT_GE(client.retries_suppressed(), 1u)
      << "retries past the deadline are suppressed, not attempted";
}

TEST(RetryDeadlineTest, RemainingBudgetRidesEveryAttempt) {
  Transport transport;
  RpcServer server(transport, "srv");
  std::optional<runtime::Duration> seen_budget;
  server.register_method("probe", [&](const Envelope& request) {
    seen_budget = budget_of(request);
    return Envelope{};
  });
  server.start();
  RetryingClient client(transport, "cli");
  Envelope req;
  req.method = "probe";
  const auto budget = std::chrono::seconds(5);
  auto r = client.call("srv", std::move(req),
                       runtime::RealClock::instance().now() + budget);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(seen_budget.has_value()) << "budget header must propagate";
  EXPECT_GT(*seen_budget, runtime::Duration{0});
  EXPECT_LE(*seen_budget, budget) << "the wire carries the REMAINING budget";
}

}  // namespace
}  // namespace amf::net

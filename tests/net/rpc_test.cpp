#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>

#include "net/propagation.hpp"

namespace amf::net {
namespace {

constexpr auto kTimeout = std::chrono::seconds(5);

TEST(RpcTest, EchoRoundTrip) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope& req) {
    Envelope resp;
    resp.put("echo", req.get("msg").value_or(""));
    return resp;
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  req.put("msg", "hello");
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get("echo"), "hello");
  EXPECT_EQ(server.served(), 1u);
}

TEST(RpcTest, UnknownMethodReturnsErrorPayload) {
  Transport transport;
  RpcServer server(transport, "server");
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "nope";
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());  // transport-level success
  EXPECT_TRUE(r.value().is_error());
  EXPECT_EQ(r.value().get("error.code"), "not-found");
}

TEST(RpcTest, HandlerExceptionBecomesErrorPayload) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("boom", [](const Envelope&) -> Envelope {
    throw std::runtime_error("handler exploded");
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "boom";
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_error());
  EXPECT_NE(r.value().get("error")->find("handler exploded"),
            std::string::npos);
}

TEST(RpcTest, CallToMissingEndpointFailsFast) {
  Transport transport;
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  auto r = client.call("ghost", std::move(req), kTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kUnavailable);
}

TEST(RpcTest, SlowHandlerTimesOutClientSide) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("slow", [](const Envelope&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return Envelope{};
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "slow";
  auto r = client.call("server", std::move(req),
                       std::chrono::milliseconds(20));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kTimeout);
}

TEST(RpcTest, ConcurrentClientsAndRequests) {
  Transport transport;
  RpcServer server(transport, "server", /*workers=*/4);
  std::atomic<int> handled{0};
  server.register_method("inc", [&](const Envelope& req) {
    handled.fetch_add(1);
    Envelope resp;
    resp.put_u64("n", req.get_u64("n").value_or(0) + 1);
    return resp;
  });
  server.start();
  constexpr int kClients = 4, kEach = 100;
  std::atomic<int> correct{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        RpcClient client(transport, "client-" + std::to_string(c));
        for (int i = 0; i < kEach; ++i) {
          Envelope req;
          req.method = "inc";
          req.put_u64("n", static_cast<std::uint64_t>(i));
          auto r = client.call("server", std::move(req), kTimeout);
          if (r.ok() &&
              r.value().get_u64("n") == static_cast<std::uint64_t>(i + 1)) {
            correct.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(correct.load(), kClients * kEach);
  EXPECT_EQ(handled.load(), kClients * kEach);
}

TEST(RpcTest, MultipleInFlightFromOneClient) {
  Transport transport;
  RpcServer server(transport, "server", /*workers=*/4);
  server.register_method("delay-echo", [](const Envelope& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        req.get_u64("ms").value_or(0)));
    Envelope resp;
    resp.put("id", req.get("id").value_or(""));
    return resp;
  });
  server.start();
  RpcClient client(transport, "client");
  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&, i] {
        Envelope req;
        req.method = "delay-echo";
        req.put("id", std::to_string(i));
        req.put_u64("ms", static_cast<std::uint64_t>((4 - i) * 10));
        auto r = client.call("server", std::move(req), kTimeout);
        if (r.ok() && r.value().get("id") == std::to_string(i)) {
          ok.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), 4) << "correlation must route out-of-order replies";
}

TEST(RpcTest, ServerStopIsClean) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope&) { return Envelope{}; });
  server.start();
  server.stop();
  server.stop();  // idempotent
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  auto r = client.call("server", std::move(req),
                       std::chrono::milliseconds(50));
  EXPECT_FALSE(r.ok());  // nobody serving anymore
}

TEST(RpcTest, OverSimulatedLatencyLink) {
  Transport::Options opts;
  opts.min_latency = std::chrono::milliseconds(10);
  Transport transport(opts);
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope&) { return Envelope{}; });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  const auto t0 = std::chrono::steady_clock::now();
  auto r = client.call("server", std::move(req), kTimeout);
  const auto rtt = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r.ok());
  EXPECT_GE(rtt, std::chrono::milliseconds(18)) << "two one-way hops";
}

TEST(RpcOverloadTest, ExpiredBudgetRefusedWithoutInvokingHandler) {
  Transport transport;
  RpcServer server(transport, "server", RpcServer::Options{});
  std::atomic<int> handler_ran{0};
  server.register_method("work", [&](const Envelope&) {
    handler_ran.fetch_add(1);
    return Envelope{};
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "work";
  put_budget(req, runtime::Duration{0});  // caller's patience already spent
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_error());
  EXPECT_EQ(r.value().get("error.code"), "deadline-exceeded");
  EXPECT_EQ(r.value().get("shed.by"), "rpc-server");
  EXPECT_EQ(handler_ran.load(), 0)
      << "expired work must be refused BEFORE the handler";
  EXPECT_GE(server.expired(), 1u);
}

TEST(RpcOverloadTest, EnforcementCanBeDisabled) {
  Transport transport;
  RpcServer::Options options;
  options.enforce_deadlines = false;
  RpcServer server(transport, "server", options);
  std::atomic<int> handler_ran{0};
  server.register_method("work", [&](const Envelope&) {
    handler_ran.fetch_add(1);
    return Envelope{};
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "work";
  put_budget(req, runtime::Duration{0});
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().is_error());
  EXPECT_EQ(handler_ran.load(), 1);
  EXPECT_EQ(server.expired(), 0u);
}

TEST(RpcOverloadTest, GenerousBudgetAndPriorityReachTheHandler) {
  Transport transport;
  RpcServer server(transport, "server", RpcServer::Options{});
  std::optional<runtime::Duration> seen_budget;
  int seen_priority = -1;
  server.register_method("work", [&](const Envelope& request) {
    seen_budget = budget_of(request);
    seen_priority = priority_of(request);
    return Envelope{};
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "work";
  put_budget(req, std::chrono::seconds(5));
  put_priority(req, 7);
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().is_error());
  ASSERT_TRUE(seen_budget.has_value());
  EXPECT_EQ(*seen_budget, std::chrono::seconds(5));
  EXPECT_EQ(seen_priority, 7);
  EXPECT_EQ(server.expired(), 0u);
}

TEST(RpcOverloadTest, FullDispatchQueueAnswersOverloaded) {
  Transport transport;
  RpcServer::Options options;
  options.workers = 1;
  options.queue_capacity = 1;
  RpcServer server(transport, "server", options);
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  server.register_method("work", [&](const Envelope&) {
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    return Envelope{};
  });
  server.start();

  std::atomic<int> ok_replies{0};
  std::atomic<int> overloaded_replies{0};
  auto call_work = [&](const std::string& name, runtime::Duration timeout) {
    RpcClient c(transport, name);
    Envelope req;
    req.method = "work";
    auto r = c.call("server", std::move(req), timeout);
    if (!r.ok()) return;  // probe parked in the queue and timed out
    if (!r.value().is_error()) {
      ok_replies.fetch_add(1);
    } else if (r.value().get("error.code") == "overloaded") {
      EXPECT_EQ(r.value().get("shed.by"), "rpc-server");
      EXPECT_EQ(r.value().get("shed.reason"), "queue-full");
      overloaded_replies.fetch_add(1);
    }
  };

  std::jthread occupier(
      [&] { call_work("occupier", kTimeout); });  // holds the worker
  while (!entered.load()) std::this_thread::yield();
  std::jthread queued(
      [&] { call_work("queued", kTimeout); });  // fills the 1-slot queue
  // Probe until SOME request is refused — whichever of `queued` or a probe
  // wins the single queue slot, the loser must get a structured refusal,
  // never silence.
  int probe = 0;
  while (server.rejected() == 0) {
    call_work("probe-" + std::to_string(probe++),
              std::chrono::milliseconds(100));
  }
  release.store(true);
  occupier.join();
  queued.join();
  EXPECT_GE(server.rejected(), 1u);
  EXPECT_GE(overloaded_replies.load(), 1)
      << "a refused caller must see the overloaded reply";
  EXPECT_GE(ok_replies.load(), 1) << "accepted requests still complete";
}

TEST(RpcOverloadTest, ApplyContextMapsHeadersOntoCallBuilder) {
  struct FakeBuilder {
    int priority_seen = -1;
    std::optional<runtime::Duration> within_seen;
    FakeBuilder& priority(int p) {
      priority_seen = p;
      return *this;
    }
    FakeBuilder& within(runtime::Duration d) {
      within_seen = d;
      return *this;
    }
  };
  Envelope req;
  put_budget(req, std::chrono::milliseconds(250));
  put_priority(req, 3);
  FakeBuilder call;
  apply_context(req, call);
  EXPECT_EQ(call.priority_seen, 3);
  ASSERT_TRUE(call.within_seen.has_value());
  EXPECT_EQ(*call.within_seen, std::chrono::milliseconds(250));

  Envelope bare;
  FakeBuilder untouched;
  apply_context(bare, untouched);
  EXPECT_EQ(untouched.priority_seen, 0) << "absent priority defaults to 0";
  EXPECT_FALSE(untouched.within_seen.has_value())
      << "absent budget must not invent a deadline";
}

}  // namespace
}  // namespace amf::net

#include "net/rpc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace amf::net {
namespace {

constexpr auto kTimeout = std::chrono::seconds(5);

TEST(RpcTest, EchoRoundTrip) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope& req) {
    Envelope resp;
    resp.put("echo", req.get("msg").value_or(""));
    return resp;
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  req.put("msg", "hello");
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().get("echo"), "hello");
  EXPECT_EQ(server.served(), 1u);
}

TEST(RpcTest, UnknownMethodReturnsErrorPayload) {
  Transport transport;
  RpcServer server(transport, "server");
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "nope";
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());  // transport-level success
  EXPECT_TRUE(r.value().is_error());
  EXPECT_EQ(r.value().get("error.code"), "not-found");
}

TEST(RpcTest, HandlerExceptionBecomesErrorPayload) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("boom", [](const Envelope&) -> Envelope {
    throw std::runtime_error("handler exploded");
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "boom";
  auto r = client.call("server", std::move(req), kTimeout);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().is_error());
  EXPECT_NE(r.value().get("error")->find("handler exploded"),
            std::string::npos);
}

TEST(RpcTest, CallToMissingEndpointFailsFast) {
  Transport transport;
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  auto r = client.call("ghost", std::move(req), kTimeout);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kUnavailable);
}

TEST(RpcTest, SlowHandlerTimesOutClientSide) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("slow", [](const Envelope&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return Envelope{};
  });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "slow";
  auto r = client.call("server", std::move(req),
                       std::chrono::milliseconds(20));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), runtime::ErrorCode::kTimeout);
}

TEST(RpcTest, ConcurrentClientsAndRequests) {
  Transport transport;
  RpcServer server(transport, "server", /*workers=*/4);
  std::atomic<int> handled{0};
  server.register_method("inc", [&](const Envelope& req) {
    handled.fetch_add(1);
    Envelope resp;
    resp.put_u64("n", req.get_u64("n").value_or(0) + 1);
    return resp;
  });
  server.start();
  constexpr int kClients = 4, kEach = 100;
  std::atomic<int> correct{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        RpcClient client(transport, "client-" + std::to_string(c));
        for (int i = 0; i < kEach; ++i) {
          Envelope req;
          req.method = "inc";
          req.put_u64("n", static_cast<std::uint64_t>(i));
          auto r = client.call("server", std::move(req), kTimeout);
          if (r.ok() &&
              r.value().get_u64("n") == static_cast<std::uint64_t>(i + 1)) {
            correct.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(correct.load(), kClients * kEach);
  EXPECT_EQ(handled.load(), kClients * kEach);
}

TEST(RpcTest, MultipleInFlightFromOneClient) {
  Transport transport;
  RpcServer server(transport, "server", /*workers=*/4);
  server.register_method("delay-echo", [](const Envelope& req) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        req.get_u64("ms").value_or(0)));
    Envelope resp;
    resp.put("id", req.get("id").value_or(""));
    return resp;
  });
  server.start();
  RpcClient client(transport, "client");
  std::atomic<int> ok{0};
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&, i] {
        Envelope req;
        req.method = "delay-echo";
        req.put("id", std::to_string(i));
        req.put_u64("ms", static_cast<std::uint64_t>((4 - i) * 10));
        auto r = client.call("server", std::move(req), kTimeout);
        if (r.ok() && r.value().get("id") == std::to_string(i)) {
          ok.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(ok.load(), 4) << "correlation must route out-of-order replies";
}

TEST(RpcTest, ServerStopIsClean) {
  Transport transport;
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope&) { return Envelope{}; });
  server.start();
  server.stop();
  server.stop();  // idempotent
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  auto r = client.call("server", std::move(req),
                       std::chrono::milliseconds(50));
  EXPECT_FALSE(r.ok());  // nobody serving anymore
}

TEST(RpcTest, OverSimulatedLatencyLink) {
  Transport::Options opts;
  opts.min_latency = std::chrono::milliseconds(10);
  Transport transport(opts);
  RpcServer server(transport, "server");
  server.register_method("echo", [](const Envelope&) { return Envelope{}; });
  server.start();
  RpcClient client(transport, "client");
  Envelope req;
  req.method = "echo";
  const auto t0 = std::chrono::steady_clock::now();
  auto r = client.call("server", std::move(req), kTimeout);
  const auto rtt = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r.ok());
  EXPECT_GE(rtt, std::chrono::milliseconds(18)) << "two one-way hops";
}

}  // namespace
}  // namespace amf::net

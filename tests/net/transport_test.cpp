#include "net/transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace amf::net {
namespace {

TEST(EnvelopeTest, PayloadHelpers) {
  Envelope env;
  env.put("name", "x").put_u64("count", 42);
  EXPECT_EQ(env.get("name"), "x");
  EXPECT_EQ(env.get_u64("count"), 42u);
  EXPECT_EQ(env.get("missing"), std::nullopt);
  EXPECT_EQ(env.get_u64("name"), std::nullopt);  // malformed int
  EXPECT_FALSE(env.is_error());
  env.put("error", "boom");
  EXPECT_TRUE(env.is_error());
}

TEST(TransportTest, DirectDelivery) {
  Transport transport;
  auto inbox = transport.open("dst");
  Envelope env;
  env.target = "dst";
  env.put("k", "v");
  ASSERT_TRUE(transport.send(std::move(env)));
  auto msg = inbox->receive();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->get("k"), "v");
  EXPECT_EQ(transport.delivered(), 1u);
}

TEST(TransportTest, SendToUnknownEndpointFails) {
  Transport transport;
  Envelope env;
  env.target = "nobody";
  EXPECT_FALSE(transport.send(std::move(env)));
}

TEST(TransportTest, OpenIsIdempotent) {
  Transport transport;
  auto a = transport.open("ep");
  auto b = transport.open("ep");
  EXPECT_EQ(a, b);
}

TEST(TransportTest, ShutdownClosesMailboxes) {
  Transport transport;
  auto inbox = transport.open("dst");
  std::atomic<bool> drained{false};
  std::jthread receiver([&] {
    EXPECT_EQ(inbox->receive(), std::nullopt);
    drained.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.shutdown();
  receiver.join();
  EXPECT_TRUE(drained.load());
  Envelope env;
  env.target = "dst";
  EXPECT_FALSE(transport.send(std::move(env)));
}

TEST(TransportTest, DelayedDeliveryRespectsLatency) {
  Transport::Options opts;
  opts.min_latency = std::chrono::milliseconds(30);
  Transport transport(opts);
  auto inbox = transport.open("dst");
  Envelope env;
  env.target = "dst";
  const auto sent_at = std::chrono::steady_clock::now();
  ASSERT_TRUE(transport.send(std::move(env)));
  auto msg = inbox->receive();
  const auto elapsed = std::chrono::steady_clock::now() - sent_at;
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(TransportTest, DelayedDeliveryPreservesPerLinkOrderWithFixedLatency) {
  Transport::Options opts;
  opts.min_latency = std::chrono::milliseconds(5);
  Transport transport(opts);
  auto inbox = transport.open("dst");
  for (int i = 0; i < 10; ++i) {
    Envelope env;
    env.target = "dst";
    env.put_u64("seq", static_cast<std::uint64_t>(i));
    ASSERT_TRUE(transport.send(std::move(env)));
  }
  for (int i = 0; i < 10; ++i) {
    auto msg = inbox->receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->get_u64("seq"), static_cast<std::uint64_t>(i));
  }
}

TEST(TransportTest, ManySendersOneReceiver) {
  Transport transport;
  auto inbox = transport.open("sink");
  constexpr int kSenders = 8, kEach = 500;
  {
    std::vector<std::jthread> senders;
    for (int s = 0; s < kSenders; ++s) {
      senders.emplace_back([&] {
        for (int i = 0; i < kEach; ++i) {
          Envelope env;
          env.target = "sink";
          ASSERT_TRUE(transport.send(std::move(env)));
        }
      });
    }
  }
  for (int i = 0; i < kSenders * kEach; ++i) {
    ASSERT_TRUE(inbox->receive().has_value());
  }
  EXPECT_EQ(inbox->pending(), 0u);
}

}  // namespace
}  // namespace amf::net

#include "net/registry.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amf::net {
namespace {

TEST(NameRegistryTest, BindAndResolve) {
  NameRegistry reg;
  EXPECT_EQ(reg.resolve("svc"), std::nullopt);
  EXPECT_EQ(reg.bind("svc", "ep-1"), 1u);
  auto b = reg.resolve("svc");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->endpoint, "ep-1");
  EXPECT_EQ(b->version, 1u);
  EXPECT_TRUE(b->healthy);
}

TEST(NameRegistryTest, RebindBumpsVersion) {
  NameRegistry reg;
  (void)reg.bind("svc", "ep-1");
  EXPECT_EQ(reg.bind("svc", "ep-2"), 2u);
  EXPECT_EQ(reg.resolve("svc")->endpoint, "ep-2");
}

TEST(NameRegistryTest, UnhealthyHiddenFromResolve) {
  NameRegistry reg;
  (void)reg.bind("svc", "ep-1");
  reg.set_healthy("svc", false);
  EXPECT_EQ(reg.resolve("svc"), std::nullopt);
  ASSERT_TRUE(reg.resolve_any("svc").has_value());
  EXPECT_FALSE(reg.resolve_any("svc")->healthy);
  reg.set_healthy("svc", true);
  EXPECT_TRUE(reg.resolve("svc").has_value());
}

TEST(NameRegistryTest, RebindRestoresHealth) {
  NameRegistry reg;
  (void)reg.bind("svc", "ep-1");
  reg.set_healthy("svc", false);
  (void)reg.bind("svc", "ep-2");
  EXPECT_TRUE(reg.resolve("svc").has_value());
}

TEST(NameRegistryTest, UnbindRemoves) {
  NameRegistry reg;
  (void)reg.bind("svc", "ep-1");
  EXPECT_TRUE(reg.unbind("svc"));
  EXPECT_FALSE(reg.unbind("svc"));
  EXPECT_EQ(reg.resolve_any("svc"), std::nullopt);
}

TEST(NameRegistryTest, NamesSorted) {
  NameRegistry reg;
  (void)reg.bind("zeta", "e");
  (void)reg.bind("alpha", "e");
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(NameRegistryTest, ConcurrentRebindsKeepMonotonicVersions) {
  NameRegistry reg;
  constexpr int kThreads = 8, kEach = 200;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kEach; ++i) {
          (void)reg.bind("svc", "ep-" + std::to_string(t));
        }
      });
    }
  }
  EXPECT_EQ(reg.resolve("svc")->version,
            static_cast<std::uint64_t>(kThreads * kEach));
}

}  // namespace
}  // namespace amf::net

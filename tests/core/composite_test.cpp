#include "core/composite.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

// Shares the trace-recording idea of moderator_test.
class Tracer final : public Aspect {
 public:
  Tracer(std::string name, std::vector<std::string>& trace,
         Decision verdict = Decision::kResume)
      : name_(std::move(name)), trace_(&trace), verdict_(verdict) {}

  std::string_view name() const override { return name_; }
  void on_arrive(InvocationContext&) override {
    trace_->push_back(name_ + ".arrive");
  }
  Decision precondition(InvocationContext&) override {
    trace_->push_back(name_ + ".pre");
    return verdict_;
  }
  void entry(InvocationContext&) override {
    trace_->push_back(name_ + ".entry");
  }
  void postaction(InvocationContext&) override {
    trace_->push_back(name_ + ".post");
  }
  void on_cancel(InvocationContext&) override {
    trace_->push_back(name_ + ".cancel");
  }

 private:
  std::string name_;
  std::vector<std::string>* trace_;
  Decision verdict_;
};

struct Dummy {};

TEST(CompositeAspectTest, GuardsAndCombineFirstVetoWins) {
  std::vector<std::string> trace;
  CompositeAspect composite(
      {std::make_shared<Tracer>("a", trace),
       std::make_shared<Tracer>("b", trace, Decision::kAbort),
       std::make_shared<Tracer>("c", trace)});
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(composite.precondition(ctx), Decision::kAbort);
  // c was never consulted.
  EXPECT_EQ(trace, (std::vector<std::string>{"a.pre", "b.pre"}));
}

TEST(CompositeAspectTest, EntriesForwardPostactionsReverse) {
  std::vector<std::string> trace;
  CompositeAspect composite({std::make_shared<Tracer>("a", trace),
                             std::make_shared<Tracer>("b", trace)});
  InvocationContext ctx(MethodId::of("m"));
  composite.entry(ctx);
  composite.postaction(ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"a.entry", "b.entry", "b.post",
                                             "a.post"}));
}

TEST(CompositeAspectTest, WorksAsOneBankCell) {
  std::vector<std::string> trace;
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("composite-cell");
  proxy.moderator().register_aspect(
      m, AspectKind::of("cc"),
      compose({std::make_shared<Tracer>("x", trace),
               std::make_shared<Tracer>("y", trace)}));
  ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_EQ(trace, (std::vector<std::string>{"x.arrive", "y.arrive", "x.pre",
                                             "y.pre", "x.entry", "y.entry",
                                             "y.post", "x.post"}));
}

TEST(CompositeAspectTest, NestsInsideItself) {
  std::vector<std::string> trace;
  auto inner = compose({std::make_shared<Tracer>("i1", trace),
                        std::make_shared<Tracer>("i2", trace)},
                       "inner");
  CompositeAspect outer({std::make_shared<Tracer>("o", trace), inner});
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(outer.precondition(ctx), Decision::kResume);
  outer.postaction(ctx);
  EXPECT_EQ(trace, (std::vector<std::string>{"o.pre", "i1.pre", "i2.pre",
                                             "i2.post", "i1.post", "o.post"}));
}

TEST(ConditionalAspectTest, AppliesOnlyWhenPredicateHolds) {
  std::vector<std::string> trace;
  ConditionalAspect cond(
      [](const InvocationContext& ctx) { return ctx.priority() > 5; },
      std::make_shared<Tracer>("vip", trace, Decision::kBlock));
  InvocationContext low(MethodId::of("m"));
  low.set_priority(0);
  EXPECT_EQ(cond.precondition(low), Decision::kResume);
  EXPECT_TRUE(trace.empty());
  InvocationContext high(MethodId::of("m"));
  high.set_priority(9);
  EXPECT_EQ(cond.precondition(high), Decision::kBlock);
  EXPECT_EQ(trace, (std::vector<std::string>{"vip.pre"}));
}

TEST(ConditionalAspectTest, EndToEndSelectiveVeto) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("cond-cell");
  // Anonymous callers only are vetoed; named ones pass.
  proxy.moderator().register_aspect(
      m, AspectKind::of("cd"),
      only_when(
          [](const InvocationContext& ctx) {
            return ctx.principal().name.empty();
          },
          std::make_shared<LambdaAspect>(
              "no-anon", [](InvocationContext& ctx) {
                ctx.set_abort_error(runtime::make_error(
                    runtime::ErrorCode::kUnauthenticated, "anonymous"));
                return Decision::kAbort;
              })));
  EXPECT_FALSE(proxy.invoke(m, [](Dummy&) {}).ok());
  auto named = proxy.call(m)
                   .as(runtime::Principal{"ann", {}, "t"})
                   .run([](Dummy&) {});
  EXPECT_TRUE(named.ok());
}

TEST(ConditionalAspectTest, HooksPairedUnderCondition) {
  // A conditional mutual-exclusion-style aspect must keep entry/post
  // pairing for matching invocations only.
  auto count = std::make_shared<int>(0);
  ConditionalAspect cond(
      [](const InvocationContext& ctx) { return ctx.priority() > 0; },
      std::make_shared<LambdaAspect>(
          "counter", nullptr,
          [count](InvocationContext&) { ++*count; },
          [count](InvocationContext&) { --*count; }));
  InvocationContext hit(MethodId::of("m"));
  hit.set_priority(1);
  cond.entry(hit);
  EXPECT_EQ(*count, 1);
  cond.postaction(hit);
  EXPECT_EQ(*count, 0);
  InvocationContext miss(MethodId::of("m"));
  cond.entry(miss);
  cond.postaction(miss);
  EXPECT_EQ(*count, 0);
}

}  // namespace
}  // namespace amf::core

#include "core/bank.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

AspectPtr named(std::string name) {
  return std::make_shared<LambdaAspect>(std::move(name));
}

std::vector<std::string> chain_names(const AspectBank& bank, MethodId m) {
  std::vector<std::string> out;
  for (const auto& e : *bank.chain(m)) {
    out.emplace_back(e.aspect->name());
  }
  return out;
}

TEST(AspectBankTest, EmptyBankYieldsEmptyChain) {
  AspectBank bank;
  EXPECT_TRUE(bank.chain(MethodId::of("nothing"))->empty());
  EXPECT_EQ(bank.size(), 0u);
  EXPECT_TRUE(bank.methods().empty());
}

TEST(AspectBankTest, RegisterAndFind) {
  AspectBank bank;
  const auto m = MethodId::of("open");
  const auto k = AspectKind::of("sync");
  auto aspect = named("sync");
  bank.register_aspect(m, k, aspect);
  EXPECT_EQ(bank.find(m, k), aspect);
  EXPECT_EQ(bank.find(m, AspectKind::of("other")), nullptr);
  EXPECT_EQ(bank.size(), 1u);
}

TEST(AspectBankTest, RegisterReplacesCell) {
  AspectBank bank;
  const auto m = MethodId::of("open");
  const auto k = AspectKind::of("sync");
  bank.register_aspect(m, k, named("v1"));
  auto v2 = named("v2");
  bank.register_aspect(m, k, v2);
  EXPECT_EQ(bank.find(m, k), v2);
  EXPECT_EQ(bank.size(), 1u);
}

TEST(AspectBankTest, RemoveAspect) {
  AspectBank bank;
  const auto m = MethodId::of("open");
  const auto k = AspectKind::of("sync");
  bank.register_aspect(m, k, named("a"));
  EXPECT_TRUE(bank.remove_aspect(m, k));
  EXPECT_FALSE(bank.remove_aspect(m, k));
  EXPECT_TRUE(bank.chain(m)->empty());
}

TEST(AspectBankTest, ChainFollowsRegistrationOrderByDefault) {
  AspectBank bank;
  const auto m = MethodId::of("m");
  bank.register_aspect(m, AspectKind::of("k-first"), named("first"));
  bank.register_aspect(m, AspectKind::of("k-second"), named("second"));
  EXPECT_EQ(chain_names(bank, m),
            (std::vector<std::string>{"first", "second"}));
}

TEST(AspectBankTest, SetKindOrderReordersExistingChains) {
  AspectBank bank;
  const auto m = MethodId::of("m");
  const auto sync = AspectKind::of("o-sync");
  const auto auth = AspectKind::of("o-auth");
  bank.register_aspect(m, sync, named("sync"));
  bank.register_aspect(m, auth, named("auth"));
  // Fig. 14: authentication must wrap synchronization.
  bank.set_kind_order({auth, sync});
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"auth", "sync"}));
}

TEST(AspectBankTest, KindsAbsentFromExplicitOrderAppend) {
  AspectBank bank;
  const auto m = MethodId::of("m");
  const auto a = AspectKind::of("ka");
  const auto b = AspectKind::of("kb");
  const auto c = AspectKind::of("kc");
  bank.set_kind_order({b, a});
  bank.register_aspect(m, a, named("a"));
  bank.register_aspect(m, c, named("c"));  // appended after b, a
  bank.register_aspect(m, b, named("b"));
  EXPECT_EQ(chain_names(bank, m),
            (std::vector<std::string>{"b", "a", "c"}));
}

TEST(AspectBankTest, ChainIsSnapshotNotLiveView) {
  AspectBank bank;
  const auto m = MethodId::of("m");
  bank.register_aspect(m, AspectKind::of("k1"), named("one"));
  const auto snapshot = bank.chain(m);
  bank.register_aspect(m, AspectKind::of("k2"), named("two"));
  EXPECT_EQ(snapshot->size(), 1u);        // old snapshot untouched
  EXPECT_EQ(bank.chain(m)->size(), 2u);   // new snapshot sees both
}

TEST(AspectBankTest, SameAspectSharedAcrossMethods) {
  AspectBank bank;
  auto shared = named("group");
  const auto k = AspectKind::of("kx");
  bank.register_aspect(MethodId::of("m1"), k, shared);
  bank.register_aspect(MethodId::of("m2"), k, shared);
  EXPECT_EQ(bank.find(MethodId::of("m1"), k), bank.find(MethodId::of("m2"), k));
  EXPECT_EQ(bank.size(), 2u);  // two cells, one object
}

TEST(AspectBankTest, DescribeShowsCompositionTable) {
  AspectBank bank;
  const auto open = MethodId::of("d-open");
  const auto assign = MethodId::of("d-assign");
  const auto sync = AspectKind::of("d-sync");
  const auto auth = AspectKind::of("d-auth");
  bank.set_kind_order({auth, sync});
  bank.register_aspect(open, sync, named("producer"));
  bank.register_aspect(open, auth, named("authenticate"));
  bank.register_aspect(assign, sync, named("consumer"));
  const auto dump = bank.describe();
  EXPECT_NE(dump.find("kind order: d-auth d-sync"), std::string::npos);
  EXPECT_NE(dump.find("d-open: [d-auth/authenticate] [d-sync/producer]"),
            std::string::npos);
  EXPECT_NE(dump.find("d-assign: [d-sync/consumer]"), std::string::npos);
  // Methods sorted by name: d-assign before d-open.
  EXPECT_LT(dump.find("d-assign:"), dump.find("d-open:"));
}

TEST(AspectBankTest, MethodsListsOnlyOccupied) {
  AspectBank bank;
  const auto m1 = MethodId::of("mm1");
  const auto m2 = MethodId::of("mm2");
  const auto k = AspectKind::of("kk");
  bank.register_aspect(m1, k, named("a"));
  bank.register_aspect(m2, k, named("b"));
  bank.remove_aspect(m2, k);
  const auto methods = bank.methods();
  ASSERT_EQ(methods.size(), 1u);
  EXPECT_EQ(methods[0], m1);
}

}  // namespace
}  // namespace amf::core

// Static/dynamic composition parity (DESIGN.md §16).
//
// The contract under test: a chain woven at compile time by StaticProxy is
// observationally identical to the same chain registered at run time with
// the moderator — same verdicts, same notes, same error text, same
// "moderator" event trace — so TraceValidator (and any tooling built on
// the protocol) cannot tell the two modes apart. Plus the compile-time
// side of the bargain: a kPinned component must instantiate ZERO
// std::atomic / std::mutex members (checked with static_asserts on the
// knob types, which fail the BUILD, not the run).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "apps/auction/static_auction.hpp"
#include "apps/ticket/static_ticket.hpp"
#include "concurrency/knobs.hpp"
#include "core/static_proxy.hpp"
#include "core/verify.hpp"

namespace {

using namespace amf;
using namespace amf::core;
using namespace amf::apps::ticket;
using enum Decision;

// --- compile-time: knobs and presence bits ---------------------------------

// Pinned knobs are the no-op types, not std:: primitives.
static_assert(std::is_same_v<concurrency::mutex_for<ThreadModel::kPinned>,
                             concurrency::NullMutex>);
static_assert(
    std::is_same_v<concurrency::atomic_for<ThreadModel::kPinned, uint64_t>,
                   concurrency::PlainCell<uint64_t>>);
static_assert(!std::is_same_v<
              concurrency::atomic_for<ThreadModel::kPinned, uint64_t>,
              std::atomic<uint64_t>>);
// Shared knobs are the real primitives.
static_assert(std::is_same_v<concurrency::mutex_for<ThreadModel::kShared>,
                             std::mutex>);
static_assert(
    std::is_same_v<concurrency::atomic_for<ThreadModel::kShared, uint64_t>,
                   std::atomic<uint64_t>>);

// A pinned proxy instantiation carries no atomics and an empty mutex.
static_assert(!PinnedStaticTicketProxy::kUsesAtomics);
static_assert(std::is_same_v<PinnedStaticTicketProxy::MutexT,
                             concurrency::NullMutex>);
static_assert(std::is_empty_v<concurrency::NullMutex>);
static_assert(
    std::is_same_v<PinnedStaticTicketProxy::CounterT,
                   concurrency::PlainCell<uint64_t>>);
// The undeclared-model twin of the same chain follows the build model:
// real primitives normally, the no-op knobs when -DAMF_SEQ=ON declares
// the whole process single-threaded.
#if defined(AMF_SEQ) && AMF_SEQ
static_assert(!StaticTicketProxy::kUsesAtomics);
static_assert(std::is_same_v<StaticTicketProxy::MutexT,
                             concurrency::NullMutex>);
#else
static_assert(StaticTicketProxy::kUsesAtomics);
static_assert(std::is_same_v<StaticTicketProxy::MutexT, std::mutex>);
#endif

// Presence bits: BoundedResourceAspect implements guard/entry/postaction
// only, so arrive and cancel phases are eliminated at compile time; an
// empty chain eliminates everything.
static_assert(StaticTicketProxy::kAnyGuard);
static_assert(StaticTicketProxy::kAnyEntry);
static_assert(StaticTicketProxy::kAnyPost);
static_assert(!StaticTicketProxy::kAnyArrive);
static_assert(!StaticTicketProxy::kAnyCancel);
static_assert(!StaticProxy<TicketServer>::kAnyAspect);

// --- trace helper -----------------------------------------------------------

// The "moderator" event messages of one invocation, in order.
std::vector<std::string> trace_of(const runtime::EventLog& log,
                                  std::uint64_t invocation_id) {
  std::vector<std::string> out;
  for (const auto& e : log.by_invocation(invocation_id)) {
    if (e.category == "moderator") out.push_back(e.message);
  }
  return out;
}

// --- verdict / note / trace parity -----------------------------------------

TEST(StaticProxyParity, SuccessScriptMatchesDynamic) {
  runtime::EventLog dyn_log, sta_log;
  core::ModeratorOptions dyn_opts;
  dyn_opts.log = &dyn_log;
  auto dyn = make_ticket_proxy(2, dyn_opts);
  auto sta = make_static_ticket_proxy(2, {.log = &sta_log});

  // Same script through both proxies: fill, drain, refill.
  const Ticket t1{1, "a", "u"}, t2{2, "b", "u"}, t3{3, "c", "u"};
  struct Step {
    bool open;
    Ticket t;
  };
  const std::vector<Step> script = {
      {true, t1}, {true, t2}, {false, {}}, {false, {}}, {true, t3}};

  for (const auto& step : script) {
    if (step.open) {
      auto rd = open_ticket(*dyn, step.t);
      auto rs = static_open_ticket(*sta, step.t);
      ASSERT_EQ(rd.status, rs.status);
      ASSERT_TRUE(rs.ok());
      EXPECT_EQ(trace_of(dyn_log, rd.invocation_id),
                trace_of(sta_log, rs.invocation_id));
    } else {
      auto rd = assign_ticket(*dyn);
      auto rs = static_assign_ticket(*sta);
      ASSERT_EQ(rd.status, rs.status);
      ASSERT_TRUE(rs.ok());
      EXPECT_EQ(*rd.value, *rs.value);
      EXPECT_EQ(trace_of(dyn_log, rd.invocation_id),
                trace_of(sta_log, rs.invocation_id));
    }
  }
  EXPECT_EQ(dyn->component().total_opened(),
            sta->component().total_opened());
  EXPECT_EQ(dyn->component().total_assigned(),
            sta->component().total_assigned());

  // Both traces satisfy the Fig. 3 automaton.
  EXPECT_TRUE(TraceValidator::validate(dyn_log).empty());
  EXPECT_TRUE(TraceValidator::validate(sta_log).empty());
}

TEST(StaticProxyParity, TimeoutOnEmptyBufferMatchesDynamic) {
  runtime::EventLog dyn_log, sta_log;
  core::ModeratorOptions dyn_opts;
  dyn_opts.log = &dyn_log;
  auto dyn = make_ticket_proxy(2, dyn_opts);
  auto sta = make_static_ticket_proxy(2, {.log = &sta_log});
  const auto wait = std::chrono::milliseconds(20);

  auto rd = dyn->call(assign_method())
                .within(wait)
                .run([](TicketServer& s) { return s.assign(); });
  auto rs = sta->call(assign_method())
                .within(wait)
                .run([](TicketServer& s) { return s.assign(); });

  ASSERT_EQ(rd.status, InvocationStatus::kTimedOut);
  ASSERT_EQ(rs.status, rd.status);
  EXPECT_EQ(rs.error.code, rd.error.code);
  EXPECT_EQ(rs.error.message, rd.error.message);

  // Same blocked.by diagnosis and same protocol trace. (Under -DAMF_SEQ
  // the static chain is build-pinned: it cannot park, so it refuses
  // immediately without a "blocked" event — TraceValidator allows zero —
  // while the dynamic side still parks its calling thread until the
  // deadline.)
  const std::vector<std::string> expected = {
      "preactivation:assign", "blocked:assign", "timeout:assign"};
  EXPECT_EQ(trace_of(dyn_log, rd.invocation_id), expected);
#if defined(AMF_SEQ) && AMF_SEQ
  const std::vector<std::string> expected_static = {"preactivation:assign",
                                                    "timeout:assign"};
  EXPECT_EQ(trace_of(sta_log, rs.invocation_id), expected_static);
#else
  EXPECT_EQ(trace_of(sta_log, rs.invocation_id), expected);
#endif
  EXPECT_TRUE(TraceValidator::validate(dyn_log).empty());
  EXPECT_TRUE(TraceValidator::validate(sta_log).empty());
}

TEST(StaticProxyParity, AuctionAbortAndNotesMatchDynamic) {
  runtime::CredentialStore store;
  ASSERT_TRUE(store.add_user("amy", "pw", {"auctioneer"}).ok());
  auto amy = store.login("amy", "pw");
  ASSERT_TRUE(amy.ok());

  runtime::EventLog dyn_audit, sta_audit, dyn_log, sta_log;
  core::ModeratorOptions dyn_opts;
  dyn_opts.log = &dyn_log;
  auto dyn = apps::auction::make_auction_proxy(store, dyn_audit, dyn_opts);
  auto sta = apps::auction::make_static_auction_proxy(store, sta_audit,
                                                      {.log = &sta_log});
  using apps::auction::AuctionHouse;
  const auto list = apps::auction::list_method();
  const auto query = apps::auction::query_method();

  // Anonymous list_item: vetoed by authentication in both modes.
  auto rd = dyn->invoke(list, [](AuctionHouse& h) {
    return h.list_item("vase", 10, "amy");
  });
  auto rs = sta->invoke(list, [](AuctionHouse& h) {
    return h.list_item("vase", 10, "amy");
  });
  ASSERT_EQ(rd.status, InvocationStatus::kAborted);
  ASSERT_EQ(rs.status, rd.status);
  EXPECT_EQ(rs.error.code, runtime::ErrorCode::kUnauthenticated);
  EXPECT_EQ(rs.error.message, rd.error.message);
  EXPECT_EQ(trace_of(dyn_log, rd.invocation_id),
            trace_of(sta_log, rs.invocation_id));

  // Authenticated list then query: admitted in both modes, same notes.
  auto rd2 = dyn->call(list).as(amy.value()).run([](AuctionHouse& h) {
    return h.list_item("vase", 10, "amy");
  });
  auto rs2 = sta->call(list).as(amy.value()).run([](AuctionHouse& h) {
    return h.list_item("vase", 10, "amy");
  });
  ASSERT_TRUE(rd2.ok());
  ASSERT_TRUE(rs2.ok());
  auto rq = sta->invoke(query, [](AuctionHouse& h) { return h.open_items(); });
  ASSERT_TRUE(rq.ok());
  EXPECT_EQ(*rq.value, 1u);

  // The audit aspect (last in both chains) recorded the same trail shape.
  EXPECT_EQ(dyn_audit.count("audit", "entry:list_item"),
            sta_audit.count("audit", "entry:list_item"));
  EXPECT_TRUE(TraceValidator::validate(dyn_log).empty());
  EXPECT_TRUE(TraceValidator::validate(sta_log).empty());
}

// --- abort / on_cancel pairing ---------------------------------------------

TEST(StaticProxy, HookOrderGuardSeesContractualOrderIncludingCancel) {
  // HookOrderGuard (the dynamic mode's conformance decorator) woven into a
  // static chain ahead of an aspect that vetoes on demand: the guard's
  // automaton must stay clean through admit, abort and cancel outcomes.
  bool veto = false;
  auto inner = std::make_shared<LambdaAspect>(
      "scripted", [&veto](InvocationContext& ctx) {
        if (veto) {
          ctx.set_note("vetoed.by", "scripted");
          return kAbort;
        }
        return kResume;
      });
  runtime::EventLog log;
  StaticProxy<TicketServer, HookOrderGuard> proxy{
      {.log = &log}, TicketServer(2), HookOrderGuard(inner)};
  const auto m = runtime::MethodId::of("guarded-open");

  auto r1 = proxy.invoke(m, [](TicketServer& s) { s.open({1, "a", "u"}); });
  ASSERT_TRUE(r1.ok());

  veto = true;
  auto r2 = proxy.invoke(m, [](TicketServer& s) { s.open({2, "b", "u"}); });
  ASSERT_EQ(r2.status, InvocationStatus::kAborted);
  EXPECT_EQ(r2.error.message, "vetoed by scripted");

  EXPECT_TRUE(proxy.aspect<0>().violations().empty())
      << proxy.aspect<0>().violations().front().description;
  EXPECT_TRUE(TraceValidator::validate(log).empty());

  const auto stats = proxy.stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.aborted, 1u);
}

// --- pinned refusal semantics -----------------------------------------------

TEST(StaticProxy, PinnedBlockRefusesWithDynamicTimeoutShape) {
  // A pinned chain cannot park (no waker exists); with a deadline the
  // refusal takes the dynamic timeout's exact error shape immediately.
  runtime::EventLog log;
  auto proxy = make_pinned_static_ticket_proxy(2, {.log = &log});
  auto r = proxy->call(assign_method())
               .within(std::chrono::seconds(5))
               .run([](TicketServer& s) { return s.assign(); });
  ASSERT_EQ(r.status, InvocationStatus::kTimedOut);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kTimeout);
  EXPECT_EQ(r.error.message, "deadline expired during preactivation");
  EXPECT_EQ(proxy->component().pending(), 0u);  // refusal touched nothing
  EXPECT_TRUE(TraceValidator::validate(log).empty());

  // Without a deadline the refusal is an abort, not a hang.
  auto r2 = static_assign_ticket(*proxy);
  EXPECT_EQ(r2.status, InvocationStatus::kAborted);

  // The component itself still works once the guard can admit.
  ASSERT_TRUE(static_open_ticket(*proxy, {1, "a", "u"}).ok());
  auto r3 = static_assign_ticket(*proxy);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.value->id, 1u);
}

// --- fault containment ------------------------------------------------------

struct ThrowingEntryAspect {
  bool armed = false;
  std::string_view name() const { return "grenade"; }
  Decision precondition(InvocationContext&) { return kResume; }
  void entry(InvocationContext&) {
    if (armed) throw std::runtime_error("boom");
  }
  void postaction(InvocationContext&) {}
};

TEST(StaticProxy, EntryFaultIsContainedLikeTheDynamicFirewall) {
  runtime::EventLog log;
  StaticProxy<TicketServer, ThrowingEntryAspect> proxy{
      {.log = &log}, TicketServer(2), ThrowingEntryAspect{}};
  proxy.aspect<0>().armed = true;
  const auto m = runtime::MethodId::of("grenade-open");

  // The builder owns its context, so the fault is observed through the
  // event log and the proxy stats.
  auto r = proxy.invoke(m, [](TicketServer& s) { s.open({1, "a", "u"}); });
  ASSERT_TRUE(r.ok()) << "a contained entry fault must not refuse the call";
  EXPECT_EQ(proxy.stats().aspect_faults, 1u);
  EXPECT_EQ(log.count("moderator", "aspect-fault:grenade-open"), 1u);
  EXPECT_TRUE(TraceValidator::validate(log).empty());
}

// --- interop: static core inside a dynamic shell ----------------------------

TEST(StaticProxy, StaticChainNestsInsideDynamicProxy) {
  // The §16 layering: run-time-swappable concerns in a dynamic shell, the
  // fixed hot chain woven statically inside it.
  auto inner = make_static_ticket_proxy(2);
  ComponentProxy<std::unique_ptr<StaticTicketProxy>> outer{std::move(inner)};

  int observed = 0;
  auto observer = std::make_shared<LambdaAspect>(
      "observer", LambdaAspect::GuardFn{},
      [&observed](InvocationContext&) { ++observed; });
  const auto m = runtime::MethodId::of("nested-open");
  outer.moderator().register_aspect(m, runtime::AspectKind::of("observe"),
                                    observer);

  auto r = outer.invoke(m, [](std::unique_ptr<StaticTicketProxy>& p) {
    return static_open_ticket(*p, {7, "nested", "u"}).ok();
  });
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r.value);
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(outer.component()->stats().admitted, 1u);
  EXPECT_EQ(outer.component()->component().total_opened(), 1u);
}

// --- blocked.by note + on_cancel on timeout ---------------------------------

struct NoteSpyAspect {
  std::string blocked_by;
  std::string_view name() const { return "note-spy"; }
  void on_cancel(InvocationContext& ctx) {
    blocked_by = ctx.note("blocked.by").value_or("");
  }
};

TEST(StaticProxy, BlockedByNoteNamesTheGuardAspectAndCancelFires) {
  // Shared-model chain, deadline forces the timeout path. The context is
  // builder-owned, so the blocked.by diagnosis is observed from inside the
  // chain: a spy aspect's on_cancel — which the refusal must invoke —
  // captures it.
  auto state = std::make_shared<aspects::BoundedResourceState>(1);
  StaticProxy<TicketServer, On<aspects::BoundedResourceAspect>, NoteSpyAspect>
      proxy{TicketServer(1),
            On<aspects::BoundedResourceAspect>(
                aspects::BoundedResourceAspect(
                    aspects::BoundedResourceAspect::Role::kConsumer, state),
                assign_method()),
            NoteSpyAspect{}};
  auto r = proxy.call(assign_method())
               .within(std::chrono::milliseconds(10))
               .run([](TicketServer& s) { return s.assign(); });
  ASSERT_EQ(r.status, InvocationStatus::kTimedOut);
  EXPECT_EQ(proxy.aspect<1>().blocked_by, "sync-consumer");
}

}  // namespace

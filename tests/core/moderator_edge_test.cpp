// Edge cases of the moderation kernel that the main moderator_test's
// happy/blocking paths do not reach.
#include <gtest/gtest.h>

#include <thread>

#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

TEST(ModeratorEdgeTest, StatsForUnknownMethodAreZero) {
  AspectModerator moderator;
  const auto stats = moderator.stats(MethodId::of("never-called"));
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_EQ(stats.block_events, 0u);
}

TEST(ModeratorEdgeTest, ShutdownIsIdempotent) {
  AspectModerator moderator;
  moderator.shutdown();
  moderator.shutdown();
  EXPECT_TRUE(moderator.is_shutdown());
  InvocationContext ctx(MethodId::of("after"));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_EQ(moderator.stats(MethodId::of("after")).cancelled, 1u);
}

TEST(ModeratorEdgeTest, PlanNamingUnknownMethodIsHarmless) {
  AspectModerator moderator;
  const auto m = MethodId::of("plan-src");
  moderator.set_notification_plan(m, {MethodId::of("plan-ghost")});
  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);  // must not crash on the unknown target
  EXPECT_EQ(moderator.stats(m).completed, 1u);
}

TEST(ModeratorEdgeTest, ExpiredDeadlineOnArrivalTimesOutWithoutAspects) {
  // Deadline already past, but the chain is empty so the guard passes on
  // the first evaluation — admission wins over the stale deadline.
  AspectModerator moderator;
  InvocationContext ctx(MethodId::of("expired-free"));
  ctx.set_deadline(runtime::RealClock::instance().now() -
                   std::chrono::milliseconds(5));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
}

TEST(ModeratorEdgeTest, ExpiredDeadlineWithBlockingGuardTimesOutFast) {
  AspectModerator moderator;
  const auto m = MethodId::of("expired-blocked");
  moderator.register_aspect(
      m, AspectKind::of("me1"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  InvocationContext ctx(m);
  ctx.set_deadline(runtime::RealClock::instance().now() -
                   std::chrono::milliseconds(5));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(100));
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kTimeout);
}

TEST(ModeratorEdgeTest, LambdaAspectDefaultsAreNoOps) {
  LambdaAspect aspect("empty");
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(aspect.precondition(ctx), Decision::kResume);
  aspect.entry(ctx);       // must not crash
  aspect.postaction(ctx);  // must not crash
  EXPECT_EQ(aspect.name(), "empty");
}

TEST(ModeratorEdgeTest, RegisterSameAspectTwiceReplacesNotDuplicates) {
  AspectModerator moderator;
  const auto m = MethodId::of("replace");
  const auto k = AspectKind::of("me2");
  auto count = std::make_shared<int>(0);
  auto counting = std::make_shared<LambdaAspect>(
      "count", [count](InvocationContext&) {
        ++*count;
        return Decision::kResume;
      });
  moderator.register_aspect(m, k, counting);
  moderator.register_aspect(m, k, counting);  // same cell, same object
  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  EXPECT_EQ(*count, 1) << "the cell must hold ONE aspect, not two";
}

TEST(ModeratorEdgeTest, TwoModeratorsAreFullyIndependent) {
  AspectModerator a, b;
  const auto m = MethodId::of("indep");
  a.register_aspect(m, AspectKind::of("me3"),
                    std::make_shared<LambdaAspect>(
                        "veto", [](InvocationContext&) {
                          return Decision::kAbort;
                        }));
  InvocationContext ctx_a(m);
  InvocationContext ctx_b(m);
  EXPECT_EQ(a.preactivation(ctx_a), Decision::kAbort);
  EXPECT_EQ(b.preactivation(ctx_b), Decision::kResume);
  b.postactivation(ctx_b);
}

TEST(ModeratorEdgeTest, AbortInsideEntrylessChainLeavesNoWaiters) {
  AspectModerator moderator;
  const auto m = MethodId::of("veto-clean");
  moderator.register_aspect(m, AspectKind::of("me4"),
                            std::make_shared<LambdaAspect>(
                                "veto", [](InvocationContext&) {
                                  return Decision::kAbort;
                                }));
  for (int i = 0; i < 10; ++i) {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  }
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
  EXPECT_EQ(moderator.stats(m).aborted, 10u);
}

TEST(ModeratorEdgeTest, SpuriousPostactivationIsRefused) {
  // Calling postactivation without admission is a driver bug; the
  // moderator must not run postactions for entries that never happened.
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  AspectModerator moderator(options);
  const auto m = MethodId::of("spurious");
  auto post_ran = std::make_shared<bool>(false);
  moderator.register_aspect(
      m, AspectKind::of("me6"),
      std::make_shared<LambdaAspect>("watch", nullptr, nullptr,
                                     [post_ran](InvocationContext&) {
                                       *post_ran = true;
                                     }));
  InvocationContext never_admitted(m);
  moderator.postactivation(never_admitted);
  EXPECT_FALSE(*post_ran);
  EXPECT_EQ(moderator.stats(m).completed, 0u);
  EXPECT_EQ(log.count("moderator", "spurious-postactivation:spurious"), 1u);
}

TEST(ModeratorEdgeTest, GuardSeesCallerNotes) {
  AspectModerator moderator;
  const auto m = MethodId::of("notes");
  moderator.register_aspect(
      m, AspectKind::of("me5"),
      std::make_shared<LambdaAspect>(
          "note-gate", [](InvocationContext& ctx) {
            return ctx.note("magic") == "word" ? Decision::kResume
                                               : Decision::kAbort;
          }));
  InvocationContext denied(m);
  EXPECT_EQ(moderator.preactivation(denied), Decision::kAbort);
  InvocationContext granted(m);
  granted.set_note("magic", "word");
  EXPECT_EQ(moderator.preactivation(granted), Decision::kResume);
  moderator.postactivation(granted);
}

}  // namespace
}  // namespace amf::core

#include "core/proxy.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

struct Service {
  int calls = 0;
  int work(int x) {
    ++calls;
    return x * 2;
  }
  void boom() { throw std::runtime_error("kaboom"); }
};

TEST(ProxyTest, InvokeReturnsBodyValue) {
  ComponentProxy<Service> proxy{Service{}};
  auto r = proxy.invoke(MethodId::of("work"),
                        [](Service& s) { return s.work(21); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value, 42);
  EXPECT_EQ(r.status, InvocationStatus::kCompleted);
  EXPECT_EQ(proxy.component().calls, 1);
}

TEST(ProxyTest, VoidBodySupported) {
  ComponentProxy<Service> proxy{Service{}};
  auto r = proxy.invoke(MethodId::of("work"),
                        [](Service& s) { (void)s.work(1); });
  EXPECT_TRUE(r.ok());
}

TEST(ProxyTest, InvocationIdsAreUnique) {
  ComponentProxy<Service> proxy{Service{}};
  auto r1 = proxy.invoke(MethodId::of("work"), [](Service&) {});
  auto r2 = proxy.invoke(MethodId::of("work"), [](Service&) {});
  EXPECT_NE(r1.invocation_id, r2.invocation_id);
}

TEST(ProxyTest, AbortedCallNeverTouchesComponent) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("guarded");
  proxy.moderator().register_aspect(
      m, AspectKind::of("p1"),
      std::make_shared<LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));
  auto r = proxy.invoke(m, [](Service& s) { return s.work(1); });
  EXPECT_EQ(r.status, InvocationStatus::kAborted);
  EXPECT_FALSE(r.value.has_value());
  EXPECT_EQ(proxy.component().calls, 0);
}

TEST(ProxyTest, BodyExceptionYieldsFailedStatusAndRunsPostactions) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("boom");
  auto post_ran = std::make_shared<bool>(false);
  auto saw_failure = std::make_shared<bool>(false);
  proxy.moderator().register_aspect(
      m, AspectKind::of("p2"),
      std::make_shared<LambdaAspect>(
          "watch", nullptr, nullptr, [=](InvocationContext& ctx) {
            *post_ran = true;
            *saw_failure = !ctx.body_succeeded();
          }));
  auto r = proxy.invoke(m, [](Service& s) { s.boom(); });
  EXPECT_EQ(r.status, InvocationStatus::kFailed);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kInternal);
  EXPECT_NE(r.error.message.find("kaboom"), std::string::npos);
  EXPECT_TRUE(*post_ran) << "postactivation must pair with admission";
  EXPECT_TRUE(*saw_failure);
}

TEST(ProxyTest, CallBuilderSetsPrincipalPriorityAndNotes) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("ctx-check");
  auto seen_principal = std::make_shared<std::string>();
  auto seen_priority = std::make_shared<int>(0);
  auto seen_note = std::make_shared<std::string>();
  proxy.moderator().register_aspect(
      m, AspectKind::of("p3"),
      std::make_shared<LambdaAspect>(
          "inspect", [=](InvocationContext& ctx) {
            *seen_principal = ctx.principal().name;
            *seen_priority = ctx.priority();
            *seen_note = ctx.note("color").value_or("");
            return Decision::kResume;
          }));
  runtime::Principal alice{"alice", {"vip"}, "tok"};
  auto r = proxy.call(m)
               .as(alice)
               .priority(7)
               .note("color", "teal")
               .run([](Service& s) { return s.work(3); });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*seen_principal, "alice");
  EXPECT_EQ(*seen_priority, 7);
  EXPECT_EQ(*seen_note, "teal");
}

TEST(ProxyTest, WithinDeadlineTimesOut) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("stuck");
  proxy.moderator().register_aspect(
      m, AspectKind::of("p4"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  auto r = proxy.call(m)
               .within(std::chrono::milliseconds(20))
               .run([](Service& s) { return s.work(1); });
  EXPECT_EQ(r.status, InvocationStatus::kTimedOut);
  EXPECT_EQ(r.error.code, runtime::ErrorCode::kTimeout);
  EXPECT_EQ(proxy.component().calls, 0);
}

TEST(ProxyTest, StoppableCallIsCancelled) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("stoppable");
  proxy.moderator().register_aspect(
      m, AspectKind::of("p5"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  std::stop_source source;
  std::jthread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    source.request_stop();
  });
  auto r = proxy.call(m).stoppable(source.get_token()).run([](Service& s) {
    return s.work(1);
  });
  EXPECT_EQ(r.status, InvocationStatus::kCancelled);
}

TEST(ProxyTest, WaitTimeIsReported) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("waity");
  auto open = std::make_shared<bool>(false);
  proxy.moderator().register_aspect(
      m, AspectKind::of("p6"),
      std::make_shared<LambdaAspect>(
          "gate", [open](InvocationContext&) {
            return *open ? Decision::kResume : Decision::kBlock;
          }));
  const auto helper = MethodId::of("waity-helper");
  proxy.moderator().register_aspect(
      helper, AspectKind::of("p6"),
      std::make_shared<LambdaAspect>(
          "open-gate", nullptr, nullptr,
          [open](InvocationContext&) { *open = true; }));  // under mod lock
  std::jthread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto r = proxy.invoke(helper, [](Service&) {});
    ASSERT_TRUE(r.ok());
  });
  auto r = proxy.invoke(m, [](Service& s) { return s.work(1); });
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.wait_time, std::chrono::milliseconds(10));
}

TEST(ProxyTest, SharedModeratorCoordinatesTwoComponents) {
  auto moderator = std::make_shared<AspectModerator>();
  ComponentProxy<Service> a{Service{}, moderator};
  ComponentProxy<Service> b{Service{}, moderator};
  const auto ma = MethodId::of("shared-a");
  const auto mb = MethodId::of("shared-b");
  // One mutual-exclusion-style guard across both proxies.
  auto active = std::make_shared<int>(0);
  auto guard = std::make_shared<LambdaAspect>(
      "xcl",
      [active](InvocationContext&) {
        return *active == 0 ? Decision::kResume : Decision::kBlock;
      },
      [active](InvocationContext&) { ++*active; },
      [active](InvocationContext&) { --*active; });
  moderator->register_aspect(ma, AspectKind::of("p7"), guard);
  moderator->register_aspect(mb, AspectKind::of("p7"), guard);

  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  auto body = [&](Service&) {
    const int now = concurrent.fetch_add(1) + 1;
    int prev = max_concurrent.load();
    while (prev < now && !max_concurrent.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    concurrent.fetch_sub(1);
  };
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&] { a.invoke(ma, body); });
      threads.emplace_back([&] { b.invoke(mb, body); });
    }
  }
  EXPECT_EQ(max_concurrent.load(), 1)
      << "shared moderator must serialize across components";
}

TEST(ProxyTest, ConcurrentInvokesAreAllAccounted) {
  ComponentProxy<Service> proxy{Service{}};
  const auto m = MethodId::of("counted");
  proxy.moderator().register_aspect(
      m, AspectKind::of("p8"),
      std::make_shared<LambdaAspect>("noop"));
  constexpr int kThreads = 8, kEach = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kEach; ++i) {
          auto r = proxy.invoke(m, [](Service&) {});
          ASSERT_TRUE(r.ok());
        }
      });
    }
  }
  const auto stats = proxy.moderator().stats(m);
  EXPECT_EQ(stats.admitted, static_cast<std::uint64_t>(kThreads * kEach));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kThreads * kEach));
}

}  // namespace
}  // namespace amf::core

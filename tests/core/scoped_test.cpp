#include "core/scoped.hpp"

#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

AspectPtr veto_aspect() {
  return std::make_shared<LambdaAspect>(
      "veto", [](InvocationContext&) { return Decision::kAbort; });
}

TEST(ScopedAspectTest, RegistersForScopeThenEmptiesCell) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("sc-empty");
  const auto k = AspectKind::of("sc1");
  {
    ScopedAspect scope(proxy.moderator(), m, k, veto_aspect());
    EXPECT_FALSE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  EXPECT_EQ(proxy.moderator().bank().find(m, k), nullptr);
}

TEST(ScopedAspectTest, RestoresPreviousOccupant) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("sc-restore");
  const auto k = AspectKind::of("sc2");
  auto original = std::make_shared<LambdaAspect>("original");
  proxy.moderator().register_aspect(m, k, original);
  {
    ScopedAspect scope(proxy.moderator(), m, k, veto_aspect());
    EXPECT_EQ(proxy.moderator().bank().find(m, k)->name(), "veto");
  }
  EXPECT_EQ(proxy.moderator().bank().find(m, k), original);
}

TEST(ScopedAspectTest, ReleaseIsIdempotent) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("sc-release");
  const auto k = AspectKind::of("sc3");
  ScopedAspect scope(proxy.moderator(), m, k, veto_aspect());
  scope.release();
  scope.release();
  EXPECT_EQ(proxy.moderator().bank().find(m, k), nullptr);
}

TEST(ScopedAspectTest, MoveTransfersOwnership) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("sc-move");
  const auto k = AspectKind::of("sc4");
  {
    ScopedAspect outer(proxy.moderator(), m, k, veto_aspect());
    {
      ScopedAspect inner = std::move(outer);
      EXPECT_NE(proxy.moderator().bank().find(m, k), nullptr);
    }  // inner restores here
    EXPECT_EQ(proxy.moderator().bank().find(m, k), nullptr);
  }  // moved-from outer must not double-restore
  EXPECT_EQ(proxy.moderator().bank().find(m, k), nullptr);
}

}  // namespace
}  // namespace amf::core

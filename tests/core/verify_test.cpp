#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "apps/ticket/ticket_proxy.hpp"
#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

struct Dummy {};

TEST(TraceValidatorTest, ConformingTracePasses) {
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  ComponentProxy<Dummy> proxy{Dummy{}, options};
  const auto m = MethodId::of("tv-ok");
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_TRUE(TraceValidator::validate(log).empty());
}

TEST(TraceValidatorTest, AbortedAndTimedOutTracesConform) {
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  ComponentProxy<Dummy> proxy{Dummy{}, options};
  const auto veto_m = MethodId::of("tv-veto");
  const auto block_m = MethodId::of("tv-block");
  proxy.moderator().register_aspect(
      veto_m, AspectKind::of("tv"),
      std::make_shared<LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));
  proxy.moderator().register_aspect(
      block_m, AspectKind::of("tv"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  (void)proxy.invoke(veto_m, [](Dummy&) {});
  (void)proxy.call(block_m)
      .within(std::chrono::milliseconds(10))
      .run([](Dummy&) {});
  EXPECT_TRUE(TraceValidator::validate(log).empty());
}

TEST(TraceValidatorTest, ConcurrentTraceConforms) {
  runtime::EventLog log;
  apps::ticket::TicketProxy* raw = nullptr;
  ModeratorOptions options;
  options.log = &log;
  auto proxy = apps::ticket::make_ticket_proxy(4, options);
  raw = proxy.get();
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([raw, t] {
        for (int i = 0; i < 200; ++i) {
          if (t % 2 == 0) {
            (void)apps::ticket::open_ticket(*raw, {1, "", ""});
          } else {
            (void)apps::ticket::assign_ticket(*raw);
          }
        }
      });
    }
  }
  const auto violations = TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
}

TEST(TraceValidatorTest, DetectsMissingPostactivation) {
  runtime::EventLog log;
  log.append("moderator", "preactivation:m", 1);
  log.append("moderator", "admitted:m", 1);
  // postactivation never recorded
  const auto violations = TraceValidator::validate(log);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].description.find("never postactivated"),
            std::string::npos);
}

TEST(TraceValidatorTest, DetectsAdmissionWithoutPreactivation) {
  runtime::EventLog log;
  log.append("moderator", "admitted:m", 2);
  log.append("moderator", "postactivation:m", 2);
  const auto violations = TraceValidator::validate(log);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].description.find("without preactivation"),
            std::string::npos);
}

TEST(TraceValidatorTest, DetectsDoubleAdmission) {
  runtime::EventLog log;
  log.append("moderator", "preactivation:m", 3);
  log.append("moderator", "admitted:m", 3);
  log.append("moderator", "postactivation:m", 3);
  log.append("moderator", "postactivation:m", 3);
  EXPECT_FALSE(TraceValidator::validate(log).empty());
}

TEST(HookOrderGuardTest, CleanProtocolLeavesNoViolations) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("hog-clean");
  auto guard =
      std::make_shared<HookOrderGuard>(std::make_shared<LambdaAspect>("x"));
  proxy.moderator().register_aspect(m, AspectKind::of("hog"), guard);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  }
  EXPECT_TRUE(guard->violations().empty());
}

TEST(HookOrderGuardTest, BlockedThenAdmittedIsClean) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("hog-blocked");
  auto open = std::make_shared<bool>(false);
  auto guard = std::make_shared<HookOrderGuard>(std::make_shared<LambdaAspect>(
      "gate", [open](InvocationContext&) {
        return *open ? Decision::kResume : Decision::kBlock;
      }));
  proxy.moderator().register_aspect(m, AspectKind::of("hog"), guard);
  const auto opener = MethodId::of("hog-opener");
  proxy.moderator().register_aspect(
      opener, AspectKind::of("hog"),
      std::make_shared<LambdaAspect>("opener", nullptr, nullptr,
                                     [open](InvocationContext&) {
                                       *open = true;
                                     }));
  std::jthread blocked([&] {
    ASSERT_TRUE(proxy.invoke(m, [](Dummy&) {}).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(proxy.invoke(opener, [](Dummy&) {}).ok());
  blocked.join();
  EXPECT_TRUE(guard->violations().empty());
}

TEST(HookOrderGuardTest, CancelledInvocationIsClean) {
  ComponentProxy<Dummy> proxy{Dummy{}};
  const auto m = MethodId::of("hog-cancel");
  auto guard = std::make_shared<HookOrderGuard>(std::make_shared<LambdaAspect>(
      "never", [](InvocationContext&) { return Decision::kBlock; }));
  proxy.moderator().register_aspect(m, AspectKind::of("hog"), guard);
  (void)proxy.call(m).within(std::chrono::milliseconds(10)).run([](Dummy&) {});
  EXPECT_TRUE(guard->violations().empty());
}

TEST(HookOrderGuardTest, DetectsBrokenDriver) {
  // Drive the hooks out of order manually; the guard must flag each issue.
  HookOrderGuard guard(std::make_shared<LambdaAspect>("x"));
  InvocationContext ctx(MethodId::of("manual"));
  guard.entry(ctx);  // entry without arrive
  EXPECT_EQ(guard.violations().size(), 1u);
  guard.postaction(ctx);  // post without matching entry state
  EXPECT_EQ(guard.violations().size(), 2u);
}

}  // namespace
}  // namespace amf::core

// Failure containment in the moderation pipeline (DESIGN.md §10).
//
// The firewall contract under test:
//   * a throwing (or injected-fault) precondition aborts ONLY that
//     invocation, with a structured kAspectFault error — the moderator and
//     every other caller keep working,
//   * entry and postaction throws are recorded but contained: the admission
//     stands, the remaining postactions and the wake plan still run,
//   * aspects whose FaultPolicy is kQuarantine are removed from composition
//     snapshots once their fault threshold trips — and blocked callers
//     re-evaluate without them,
//   * the stall watchdog detects waiters blocked past their bound against
//     the MODERATOR clock, dumps a wait-graph line naming the method and
//     chain, and (when configured) evicts them with kDeadlineExceeded.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "core/verify.hpp"
#include "runtime/clock.hpp"
#include "runtime/event_log.hpp"
#include "runtime/fault.hpp"
#include "runtime/metrics.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::ErrorCode;
using runtime::MethodId;

/// Guard that throws whenever the invocation carries the "hurt" note and
/// blocks/passes otherwise, so one test can aim faults at chosen calls.
class FragileGuard final : public Aspect {
 public:
  FragileGuard(std::string name, Decision otherwise, FaultPolicy policy)
      : name_(std::move(name)), otherwise_(otherwise), policy_(policy) {}

  std::string_view name() const override { return name_; }
  FaultPolicy fault_policy() const override { return policy_; }

  Decision precondition(InvocationContext& ctx) override {
    if (ctx.note("hurt")) throw std::runtime_error("guard broke");
    return otherwise_;
  }
  void on_cancel(InvocationContext&) override { ++cancels_; }

  int cancels() const { return cancels_; }

 private:
  std::string name_;
  Decision otherwise_;
  FaultPolicy policy_;
  int cancels_ = 0;
};

void expect_trace_clean(const runtime::EventLog& log) {
  const auto violations = TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
}

// --- precondition firewall -------------------------------------------------

TEST(ModeratorFaultTest, PreconditionThrowAbortsOnlyThatInvocation) {
  runtime::EventLog log;
  runtime::Registry metrics;
  ModeratorOptions options;
  options.log = &log;
  options.metrics = &metrics;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fault-pre");
  auto fragile = std::make_shared<FragileGuard>(
      "fragile", Decision::kResume, FaultPolicy::propagate());
  moderator.register_aspect(m, AspectKind::of("fault-k"), fragile);

  InvocationContext poisoned(m);
  poisoned.set_note("hurt", "1");
  EXPECT_EQ(moderator.preactivation(poisoned), Decision::kAbort);
  ASSERT_TRUE(poisoned.abort_error().has_value());
  EXPECT_EQ(poisoned.abort_error()->code, ErrorCode::kAspectFault);
  EXPECT_NE(poisoned.abort_error()->message.find("fragile"),
            std::string::npos);
  EXPECT_EQ(poisoned.note("faulted.by"), "fragile");
  EXPECT_EQ(fragile->cancels(), 1) << "on_cancel must run for the abort";

  // The moderator is unharmed: the next (clean) invocation admits, and a
  // kPropagate aspect stays composed however often it throws.
  InvocationContext clean(m);
  ASSERT_EQ(moderator.preactivation(clean), Decision::kResume);
  moderator.postactivation(clean);
  EXPECT_EQ(moderator.stats(m).aborted, 1u);
  EXPECT_EQ(moderator.stats(m).completed, 1u);
  EXPECT_EQ(moderator.fault_count(fragile.get()), 1u);
  EXPECT_FALSE(moderator.bank().is_quarantined(fragile.get()));
  EXPECT_EQ(metrics.counter("moderator.aspect_faults").value(), 1u);
  EXPECT_EQ(log.count("moderator", "aspect-fault:fault-pre"), 1u);
  expect_trace_clean(log);
}

#if AMF_FAULT_INJECTION
TEST(ModeratorFaultTest, InjectedPreconditionFaultIsStructured) {
  runtime::EventLog log;
  runtime::FaultInjector injector(11);
  injector.arm(runtime::FaultPoint::kPrecondition, 1.0, 1);
  ModeratorOptions options;
  options.log = &log;
  options.fault = &injector;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fault-injected-pre");
  moderator.register_aspect(
      m, AspectKind::of("fault-k"),
      std::make_shared<LambdaAspect>("victim"));

  InvocationContext first(m);
  EXPECT_EQ(moderator.preactivation(first), Decision::kAbort);
  ASSERT_TRUE(first.abort_error().has_value());
  EXPECT_EQ(first.abort_error()->code, ErrorCode::kAspectFault);
  EXPECT_NE(first.abort_error()->message.find("injected"),
            std::string::npos);

  // The fire cap bounds the storm: the second decision passes.
  InvocationContext second(m);
  ASSERT_EQ(moderator.preactivation(second), Decision::kResume);
  moderator.postactivation(second);
  expect_trace_clean(log);
}
#endif  // AMF_FAULT_INJECTION

// --- entry / postaction containment ----------------------------------------

TEST(ModeratorFaultTest, EntryThrowIsContainedAndPairingHolds) {
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fault-entry");
  std::atomic<int> posted{0};
  auto brittle = std::make_shared<LambdaAspect>(
      "brittle-entry", nullptr,
      [](InvocationContext&) { throw std::runtime_error("entry broke"); },
      [&](InvocationContext&) { posted.fetch_add(1); });
  moderator.register_aspect(m, AspectKind::of("fault-k"), brittle);

  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume)
      << "an entry throw must not revoke the admission";
  moderator.postactivation(ctx);
  EXPECT_EQ(posted.load(), 1) << "postaction still pairs with the entry";
  EXPECT_EQ(moderator.fault_count(brittle.get()), 1u);
  EXPECT_EQ(moderator.stats(m).completed, 1u);
  expect_trace_clean(log);
}

TEST(ModeratorFaultTest, PostactionThrowStillRunsWakePlan) {
  // Method B completes with a chain of two postactions; the LATER one (runs
  // first, reverse order) throws. The earlier postaction must still run —
  // it opens the gate a waiter on method A is blocked behind — and the wake
  // plan must still notify A's shard.
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  AspectModerator moderator(options);
  const auto a = MethodId::of("fault-wake-a");
  const auto b = MethodId::of("fault-wake-b");
  auto gate = std::make_shared<std::atomic<bool>>(false);
  moderator.register_aspect(
      a, AspectKind::of("fault-gate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return gate->load() ? Decision::kResume : Decision::kBlock;
      }));
  moderator.register_aspect(
      b, AspectKind::of("fault-open"),
      std::make_shared<LambdaAspect>("opener", nullptr, nullptr,
                                     [gate](InvocationContext&) {
                                       gate->store(true);
                                     }));
  auto thrower = std::make_shared<LambdaAspect>(
      "thrower", nullptr, nullptr, [](InvocationContext&) {
        throw std::runtime_error("postaction broke");
      });
  moderator.register_aspect(b, AspectKind::of("fault-throw"), thrower);
  moderator.set_notification_plan(b, {a});

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(a);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  while (moderator.blocked_waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  InvocationContext ctx(b);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);  // must not throw out of the pipeline
  waiter.join();
  EXPECT_TRUE(admitted.load()) << "wake plan lost after a postaction throw";
  EXPECT_EQ(moderator.fault_count(thrower.get()), 1u);
  EXPECT_EQ(moderator.stats(b).completed, 1u);
  expect_trace_clean(log);
}

// --- quarantine ------------------------------------------------------------

TEST(ModeratorFaultTest, QuarantineThresholdRemovesAspect) {
  runtime::EventLog log;
  runtime::Registry metrics;
  ModeratorOptions options;
  options.log = &log;
  options.metrics = &metrics;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fault-quarantine");
  auto fragile = std::make_shared<FragileGuard>(
      "expendable", Decision::kResume, FaultPolicy::quarantine(3));
  moderator.register_aspect(m, AspectKind::of("fault-k"), fragile);

  for (int i = 0; i < 3; ++i) {
    InvocationContext ctx(m);
    ctx.set_note("hurt", "1");
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
    EXPECT_EQ(ctx.abort_error()->code, ErrorCode::kAspectFault);
  }
  EXPECT_EQ(moderator.fault_count(fragile.get()), 3u);
  EXPECT_TRUE(moderator.bank().is_quarantined(fragile.get()));
  EXPECT_EQ(metrics.counter("moderator.quarantines").value(), 1u);
  EXPECT_EQ(log.count("bank", "quarantine:expendable"), 1u);

  // Quarantined ⇒ out of the snapshot: a poisoned call now sails through.
  InvocationContext after(m);
  after.set_note("hurt", "1");
  ASSERT_EQ(moderator.preactivation(after), Decision::kResume);
  moderator.postactivation(after);
  EXPECT_EQ(moderator.fault_count(fragile.get()), 3u) << "no longer invoked";
  expect_trace_clean(log);
}

TEST(ModeratorFaultTest, QuarantineWakesBlockedCallersToReAdmit) {
  // A waiter is parked behind an always-Block guard. When that guard's
  // fault threshold trips (via a poisoned invocation), the quarantine must
  // bump the composition epoch and wake the waiter, which re-evaluates
  // without the guard and gets admitted — no completion ever happens.
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fault-unblock");
  auto blocker = std::make_shared<FragileGuard>(
      "blocker", Decision::kBlock, FaultPolicy::quarantine(1));
  moderator.register_aspect(m, AspectKind::of("fault-k"), blocker);

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  while (moderator.blocked_waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());

  InvocationContext poisoned(m);
  poisoned.set_note("hurt", "1");
  EXPECT_EQ(moderator.preactivation(poisoned), Decision::kAbort);
  waiter.join();
  EXPECT_TRUE(admitted.load())
      << "quarantine must recompose blocked callers";
  EXPECT_TRUE(moderator.bank().is_quarantined(blocker.get()));
  expect_trace_clean(log);
}

TEST(ModeratorFaultTest, UnquarantineRestoresEnforcement) {
  AspectModerator moderator;
  const auto m = MethodId::of("fault-restore");
  auto fragile = std::make_shared<FragileGuard>(
      "flappy", Decision::kResume, FaultPolicy::quarantine(1));
  moderator.register_aspect(m, AspectKind::of("fault-k"), fragile);

  InvocationContext poisoned(m);
  poisoned.set_note("hurt", "1");
  EXPECT_EQ(moderator.preactivation(poisoned), Decision::kAbort);
  ASSERT_TRUE(moderator.bank().is_quarantined(fragile.get()));

  EXPECT_TRUE(moderator.unquarantine(fragile.get()));
  EXPECT_FALSE(moderator.unquarantine(fragile.get())) << "idempotence";
  EXPECT_EQ(moderator.fault_count(fragile.get()), 0u) << "count reset";

  // Back in the chain: enforcing again, and one more fault re-quarantines.
  InvocationContext again(m);
  again.set_note("hurt", "1");
  EXPECT_EQ(moderator.preactivation(again), Decision::kAbort);
  EXPECT_TRUE(moderator.bank().is_quarantined(fragile.get()));
}

// --- stall watchdog --------------------------------------------------------

TEST(ModeratorFaultTest, WatchdogReportsStalledWaiterWithWaitGraph) {
  runtime::ManualClock clock;
  runtime::EventLog log(clock);
  runtime::Registry metrics;
  WatchdogOptions wd;
  wd.stall_after = std::chrono::milliseconds(100);
  ModeratorOptions options;
  options.clock = &clock;
  options.log = &log;
  options.metrics = &metrics;
  options.watchdog = wd;
  AspectModerator moderator(options);
  const auto m = MethodId::of("stall-report");
  moderator.register_aspect(
      m, AspectKind::of("stall-k1"),
      std::make_shared<LambdaAspect>("first"));
  moderator.register_aspect(
      m, AspectKind::of("stall-k2"),
      std::make_shared<LambdaAspect>("never", [](InvocationContext&) {
        return Decision::kBlock;
      }));

  std::jthread waiter([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
    EXPECT_EQ(ctx.abort_error()->code, ErrorCode::kCancelled);
  });
  while (moderator.blocked_waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Under the bound: nothing to report.
  clock.advance(std::chrono::milliseconds(50));
  EXPECT_EQ(moderator.scan_stalls(), 0u);

  clock.advance(std::chrono::milliseconds(100));
  EXPECT_EQ(moderator.scan_stalls(), 1u);
  EXPECT_EQ(moderator.scan_stalls(), 0u) << "one dump per stalled episode";
  EXPECT_EQ(metrics.counter("moderator.stalls").value(), 1u);

  const auto dumps = log.by_category("watchdog");
  ASSERT_EQ(dumps.size(), 1u);
  // The dump names the stalled method, the guard it is blocked by, and the
  // full aspect chain — the wait graph an operator needs.
  EXPECT_NE(dumps[0].message.find("stall:stall-report"), std::string::npos)
      << dumps[0].message;
  EXPECT_NE(dumps[0].message.find("blocked_by=never"), std::string::npos)
      << dumps[0].message;
  EXPECT_NE(dumps[0].message.find("chain=[first < never]"),
            std::string::npos)
      << dumps[0].message;
  EXPECT_NE(dumps[0].invocation_id, 0u);

  moderator.shutdown();  // releases the deliberately stalled waiter
}

TEST(ModeratorFaultTest, WatchdogEvictsStalledWaiterWhenConfigured) {
  runtime::ManualClock clock;
  runtime::EventLog log(clock);
  WatchdogOptions wd;
  wd.stall_after = std::chrono::milliseconds(100);
  wd.abort_stalled = true;
  ModeratorOptions options;
  options.clock = &clock;
  options.log = &log;
  options.watchdog = wd;
  AspectModerator moderator(options);
  const auto m = MethodId::of("stall-evict");
  moderator.register_aspect(
      m, AspectKind::of("stall-k"),
      std::make_shared<LambdaAspect>("never", [](InvocationContext&) {
        return Decision::kBlock;
      }));

  std::atomic<bool> evicted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
    ASSERT_TRUE(ctx.abort_error().has_value());
    EXPECT_EQ(ctx.abort_error()->code, ErrorCode::kDeadlineExceeded);
    EXPECT_NE(ctx.abort_error()->message.find("watchdog"),
              std::string::npos);
    evicted.store(true);
  });
  while (moderator.blocked_waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  clock.advance(std::chrono::milliseconds(150));
  EXPECT_EQ(moderator.scan_stalls(), 1u);
  waiter.join();
  EXPECT_TRUE(evicted.load());
  EXPECT_EQ(moderator.stats(m).aborted, 1u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
  expect_trace_clean(log);
}

TEST(ModeratorFaultTest, WatchdogGraceCoversDeadlinedWaiters) {
  // A waiter WITH a deadline is normally self-timing; the watchdog only
  // flags it past deadline + grace. Advancing beyond both races the
  // waiter's own timeout poll against the eviction, so either outcome
  // (kTimeout or kDeadlineExceeded) is legitimate — what must hold is that
  // the waiter terminates and the stall was reported.
  runtime::ManualClock clock;
  runtime::EventLog log(clock);
  WatchdogOptions wd;
  wd.grace = std::chrono::milliseconds(50);
  wd.abort_stalled = true;
  ModeratorOptions options;
  options.clock = &clock;
  options.log = &log;
  options.watchdog = wd;
  AspectModerator moderator(options);
  const auto m = MethodId::of("stall-deadline");
  moderator.register_aspect(
      m, AspectKind::of("stall-k"),
      std::make_shared<LambdaAspect>("never", [](InvocationContext&) {
        return Decision::kBlock;
      }));

  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m);
    ctx.set_deadline(clock.now() + std::chrono::milliseconds(100));
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
    ASSERT_TRUE(ctx.abort_error().has_value());
    EXPECT_TRUE(ctx.abort_error()->code == ErrorCode::kTimeout ||
                ctx.abort_error()->code == ErrorCode::kDeadlineExceeded)
        << to_string(ctx.abort_error()->code);
    done.store(true);
  });
  while (moderator.blocked_waiters() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Past the deadline but within grace: stalled is NOT yet declared.
  clock.advance(std::chrono::milliseconds(120));
  EXPECT_EQ(moderator.scan_stalls(), 0u);
  clock.advance(std::chrono::milliseconds(100));
  // The waiter may have timed itself out (and unregistered) already; a
  // report is only expected while it is still blocked.
  (void)moderator.scan_stalls();
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
}

TEST(ModeratorFaultTest, WatchdogScannerThreadDetectsStalls) {
  // Real-clock smoke test of the background scanner: a waiter stalls past
  // stall_after and the poll thread must report it without any manual
  // scan_stalls() call.
  runtime::EventLog log;
  WatchdogOptions wd;
  wd.stall_after = std::chrono::milliseconds(20);
  wd.poll = std::chrono::milliseconds(5);
  ModeratorOptions options;
  options.log = &log;
  options.watchdog = wd;
  AspectModerator moderator(options);
  const auto m = MethodId::of("stall-scanner");
  moderator.register_aspect(
      m, AspectKind::of("stall-k"),
      std::make_shared<LambdaAspect>("never", [](InvocationContext&) {
        return Decision::kBlock;
      }));

  std::jthread waiter([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  });
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (log.by_category("watchdog").empty() &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(log.by_category("watchdog").empty())
      << "scanner thread never reported the stall";
  moderator.shutdown();
}

}  // namespace
}  // namespace amf::core

// Tests for batch moderation of grouped chains (DESIGN.md §14).
//
// Methods that share an aspect OBJECT and have no notification plan take
// the flat-combining write path: admission requests queue on an intrusive
// MPSC list and the first caller to win the combiner token drains the
// whole batch under ONE acquisition of the group's shard set. What must
// hold:
//   * grouped admission stays atomic — a batch never admits two bodies
//     into an exclusion group at once,
//   * verdicts are per call — one call's veto aborts only that call, and
//     entry/postaction pairing (G4) is exact for the admitted ones,
//   * parked writers are woken by completions (the combiner re-drive),
//     with NO lost wakeup against the lock-free fast path's Dekker
//     handshake, combiner handoff, or recomposition epoch bumps,
//   * queued entries whose deadline expired are shed without evaluation,
//   * shutdown and recomposition flush the queue — nobody strands.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stop_token>
#include <string>
#include <thread>
#include <vector>

#include "aspects/synchronization.hpp"
#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "runtime/clock.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::ErrorCode;
using runtime::MethodId;

// Grouped methods with NO notification plan — the batch-eligible shape.
// (Setting a plan routes completions through planned wake targets and
// disables batching; the sharding tests cover that regime.)

// --- grouped atomicity through the combiner ------------------------------

TEST(ModeratorBatchTest, GroupedAdmissionsStayAtomicUnderWriteBurst) {
  AspectModerator moderator;
  const auto a = MethodId::of("batch-group-a");
  const auto b = MethodId::of("batch-group-b");
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("batch-excl"), excl);
  moderator.register_aspect(b, AspectKind::of("batch-excl"), excl);

  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> completed{0};
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const auto method = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(method);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          const int now = inside.fetch_add(1) + 1;
          int seen = max_inside.load();
          while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
          }
          inside.fetch_sub(1);
          moderator.postactivation(ctx);
          completed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(max_inside.load(), 1) << "a batch admitted two bodies at once";
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(moderator.stats(a).admitted + moderator.stats(b).admitted,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(excl->active(), 0u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
}

// --- per-call verdicts and G4 pairing inside one batch -------------------

TEST(ModeratorBatchTest, BatchedVerdictsAreIsolatedAndPairingExact) {
  // Method b carries an extra always-veto guard; a and b still share the
  // "link" aspect, so both ride the same combiner. Every b call must abort
  // (its own verdict), every a call must admit, and the link aspect's
  // entry/postaction pairing must be exact: aborted calls never run entry.
  AspectModerator moderator;
  const auto a = MethodId::of("batch-iso-a");
  const auto b = MethodId::of("batch-iso-b");
  std::atomic<int> link_entries{0};
  std::atomic<int> link_posts{0};
  auto link = std::make_shared<LambdaAspect>(
      "link", nullptr,
      [&](InvocationContext&) { link_entries.fetch_add(1); },
      [&](InvocationContext&) { link_posts.fetch_add(1); });
  moderator.register_aspect(a, AspectKind::of("batch-link"), link);
  moderator.register_aspect(b, AspectKind::of("batch-link"), link);
  moderator.register_aspect(
      b, AspectKind::of("batch-veto"),
      std::make_shared<LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));

  std::atomic<int> a_admitted{0};
  std::atomic<int> b_aborted{0};
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 150;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const bool on_a = (t % 2 == 0);
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(on_a ? a : b);
          const Decision d = moderator.preactivation(ctx);
          if (on_a) {
            ASSERT_EQ(d, Decision::kResume);
            a_admitted.fetch_add(1);
            moderator.postactivation(ctx);
          } else {
            ASSERT_EQ(d, Decision::kAbort)
                << "b's veto leaked past its own call";
            ASSERT_TRUE(ctx.abort_error());
            EXPECT_EQ(ctx.abort_error()->code, ErrorCode::kAborted);
            b_aborted.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(a_admitted.load(), (kThreads / 2) * kOpsPerThread);
  EXPECT_EQ(b_aborted.load(), (kThreads / 2) * kOpsPerThread);
  EXPECT_EQ(moderator.stats(b).aborted,
            static_cast<std::uint64_t>(b_aborted.load()));
  EXPECT_EQ(link_entries.load(), a_admitted.load())
      << "an aborted call ran an entry hook";
  EXPECT_EQ(link_entries.load(), link_posts.load())
      << "a batch tore an entry/postaction pair";
}

// --- parked writers are woken by completions -----------------------------

TEST(ModeratorBatchTest, ParkedRequestWokenByGroupCompletion) {
  AspectModerator moderator;
  const auto waiting = MethodId::of("batch-wake-wait");
  const auto releasing = MethodId::of("batch-wake-open");
  auto gate = std::make_shared<std::atomic<bool>>(false);
  // The shared no-op link groups the two methods (batch eligibility);
  // the gate guard rides only on `waiting`.
  auto linker = std::make_shared<LambdaAspect>("linker");
  moderator.register_aspect(waiting, AspectKind::of("batch-wk-link"), linker);
  moderator.register_aspect(releasing, AspectKind::of("batch-wk-link"),
                            linker);
  moderator.register_aspect(
      waiting, AspectKind::of("batch-wk-gate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return gate->load() ? Decision::kResume : Decision::kBlock;
      }));
  moderator.register_aspect(
      releasing, AspectKind::of("batch-wk-open"),
      std::make_shared<LambdaAspect>("open", nullptr, nullptr,
                                     [gate](InvocationContext&) {
                                       gate->store(true);
                                     }));

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(waiting);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  while (moderator.blocked_waiters() == 0u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(moderator.stats(waiting).block_events, 1u);

  InvocationContext ctx(releasing);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
}

// --- lost-wakeup hammer (satellite proof; run under TSan in CI) ----------

TEST(ModeratorBatchTest, ParkedWakeupHammerSurvivesHandoffAndEpochBumps) {
  // The §14 lost-wakeup surface: parked nodes sleep on per-request cvs
  // while admissions race through (a) the combiner handoff (clear token /
  // re-check), (b) the §11 lock-free fast path's sleepers_ gate, and
  // (c) recomposition flushes that settle the whole queue to retry. A
  // shared exclusion limit of 1 makes every admission a potential parker
  // and every completion a required wakeup; a mutator thread keeps
  // merging/splitting the composition to bump epochs mid-park. Any lost
  // wakeup deadlocks the test (ctest TIMEOUT 120 converts it to failure).
  AspectModerator moderator;
  const auto a = MethodId::of("batch-hammer-a");
  const auto b = MethodId::of("batch-hammer-b");
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("batch-hm-excl"), excl);
  moderator.register_aspect(b, AspectKind::of("batch-hm-excl"), excl);

  std::atomic<int> link_entries{0};
  std::atomic<int> link_posts{0};
  auto link = std::make_shared<LambdaAspect>(
      "hm-link", nullptr,
      [&](InvocationContext&) { link_entries.fetch_add(1); },
      [&](InvocationContext&) { link_posts.fetch_add(1); });

  std::atomic<int> inside{0};
  std::atomic<int> violations{0};
  std::atomic<int> completed{0};
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 250;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const auto method = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(method);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          if (inside.fetch_add(1) + 1 > 1) violations.fetch_add(1);
          inside.fetch_sub(1);
          moderator.postactivation(ctx);
          completed.fetch_add(1);
        }
      });
    }
    workers.emplace_back([&] {
      // Epoch churn: register/remove a shared aspect, forcing barrier
      // flushes that settle every queued/parked request to retry.
      while (completed.load() < kThreads * kOpsPerThread) {
        moderator.register_aspect(a, AspectKind::of("batch-hm-link"), link);
        moderator.register_aspect(b, AspectKind::of("batch-hm-link"), link);
        moderator.bank().remove_aspect(a, AspectKind::of("batch-hm-link"));
        moderator.bank().remove_aspect(b, AspectKind::of("batch-hm-link"));
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(link_entries.load(), link_posts.load())
      << "recomposition tore a pair out of a batch";
  EXPECT_EQ(excl->active(), 0u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
}

// --- queued-but-expired entries are shed ---------------------------------

TEST(ModeratorBatchTest, ExpiredDeadlineTimesOutWhileParked) {
  AspectModerator moderator;
  const auto m = MethodId::of("batch-dead-m");
  const auto other = MethodId::of("batch-dead-other");
  auto never = std::make_shared<LambdaAspect>(
      "never", [](InvocationContext&) { return Decision::kBlock; });
  moderator.register_aspect(m, AspectKind::of("batch-dead-k"), never);
  moderator.register_aspect(other, AspectKind::of("batch-dead-k"), never);

  InvocationContext ctx(m);
  ctx.set_deadline(runtime::RealClock::instance().now() +
                   std::chrono::milliseconds(40));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  ASSERT_TRUE(ctx.abort_error());
  EXPECT_EQ(ctx.abort_error()->code, ErrorCode::kTimeout);
  EXPECT_EQ(moderator.stats(m).timed_out, 1u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
}

// --- shutdown flushes the batch queue ------------------------------------

TEST(ModeratorBatchTest, ShutdownRefusesParkedBatchWaiters) {
  AspectModerator moderator;
  const auto a = MethodId::of("batch-shut-a");
  const auto b = MethodId::of("batch-shut-b");
  auto never = std::make_shared<LambdaAspect>(
      "never", [](InvocationContext&) { return Decision::kBlock; });
  moderator.register_aspect(a, AspectKind::of("batch-shut-k"), never);
  moderator.register_aspect(b, AspectKind::of("batch-shut-k"), never);

  constexpr int kWaiters = 6;
  std::atomic<int> refused{0};
  {
    std::vector<std::jthread> waiters;
    for (int w = 0; w < kWaiters; ++w) {
      waiters.emplace_back([&, w] {
        InvocationContext ctx((w % 2 == 0) ? a : b);
        if (moderator.preactivation(ctx) == Decision::kAbort &&
            ctx.abort_error()->code == ErrorCode::kCancelled) {
          refused.fetch_add(1);
        }
      });
    }
    while (moderator.blocked_waiters() <
           static_cast<std::uint64_t>(kWaiters)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    moderator.shutdown();
  }
  EXPECT_EQ(refused.load(), kWaiters);
  EXPECT_TRUE(moderator.is_shutdown());
}

// --- stop tokens reach parked batch requests -----------------------------

TEST(ModeratorBatchTest, StopRequestCancelsParkedBatchWaiter) {
  AspectModerator moderator;
  const auto a = MethodId::of("batch-stop-a");
  const auto b = MethodId::of("batch-stop-b");
  auto never = std::make_shared<LambdaAspect>(
      "never", [](InvocationContext&) { return Decision::kBlock; });
  moderator.register_aspect(a, AspectKind::of("batch-stop-k"), never);
  moderator.register_aspect(b, AspectKind::of("batch-stop-k"), never);

  std::stop_source stopper;
  std::atomic<bool> cancelled{false};
  std::jthread waiter([&] {
    InvocationContext ctx(a);
    ctx.set_stop(stopper.get_token());
    if (moderator.preactivation(ctx) == Decision::kAbort &&
        ctx.abort_error()->code == ErrorCode::kCancelled) {
      cancelled.store(true);
    }
  });
  while (moderator.blocked_waiters() == 0u) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stopper.request_stop();
  waiter.join();
  EXPECT_TRUE(cancelled.load());
  EXPECT_EQ(moderator.blocked_waiters(), 0u);
  EXPECT_EQ(moderator.stats(a).cancelled, 1u);
}

}  // namespace
}  // namespace amf::core

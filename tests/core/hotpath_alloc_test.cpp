// Proves the DESIGN.md §13 zero-allocation claim as a test, not just a
// bench counter: once the thread-local moderation cache and the id block
// are warm, a moderated invocation — empty chain or a chain of
// non-blocking aspects — performs ZERO heap allocations end to end.
//
// The counter replaces global operator new for this binary only. gtest
// itself allocates freely, so the assertions bracket exactly the invoke
// loop and nothing else: counters are read before/after the loop and the
// EXPECTs run outside the measured window.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "core/proxy.hpp"
#include "runtime/ids.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

// GCC pattern-matches new/delete pairs through the inlined replacements
// and objects to the malloc/free plumbing; the pairing here is exact
// (every new maps to malloc-family, every delete to free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(al);
  if (void* p = std::aligned_alloc(a, (n + a - 1) & ~(a - 1))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

namespace amf::core {
namespace {

struct NullComponent {
  int poke() { return 42; }
};

constexpr int kWarmup = 64;
constexpr int kMeasured = 256;

// Runs `invoke` kWarmup times (id block, TL moderation cache, metrics
// registration all settle), then kMeasured times under the counter.
// Returns allocations observed during the measured window.
template <typename F>
std::uint64_t measure_steady_state(F&& invoke) {
  for (int i = 0; i < kWarmup; ++i) invoke();
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < kMeasured; ++i) invoke();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

TEST(HotPathAllocTest, EmptyChainInvokeIsAllocationFree) {
  ComponentProxy<NullComponent> proxy{NullComponent{}};
  const auto method = runtime::MethodId::of("alloc-empty");
  const std::uint64_t allocs = measure_steady_state([&] {
    auto r = proxy.invoke(method, [](NullComponent& c) { return c.poke(); });
    if (r.value != 42) std::abort();  // keep the call observable, no gtest
  });
  EXPECT_EQ(allocs, 0u)
      << "empty-chain moderated invoke allocated in steady state";
  // Sanity: the loop really took the fast path (not a degraded slow path
  // that happens to be allocation-free).
  EXPECT_GE(proxy.moderator().fast_admissions(),
            static_cast<std::uint64_t>(kMeasured));
}

TEST(HotPathAllocTest, NonBlockingChainInvokeIsAllocationFree) {
  ComponentProxy<NullComponent> proxy{NullComponent{}};
  const auto method = runtime::MethodId::of("alloc-observed");
  std::atomic<std::uint64_t> entries{0};
  std::atomic<std::uint64_t> posts{0};
  for (const char* kind : {"observe-a", "observe-b"}) {
    auto observe = std::make_shared<LambdaAspect>(
        kind, [](InvocationContext&) { return Decision::kResume; },
        [&entries](InvocationContext&) {
          entries.fetch_add(1, std::memory_order_relaxed);
        },
        [&posts](InvocationContext&) {
          posts.fetch_add(1, std::memory_order_relaxed);
        });
    observe->set_nonblocking(true);
    proxy.moderator().register_aspect(method, runtime::AspectKind::of(kind),
                                      observe);
  }
  const std::uint64_t allocs = measure_steady_state([&] {
    auto r = proxy.invoke(method, [](NullComponent& c) { return c.poke(); });
    if (r.value != 42) std::abort();
  });
  EXPECT_EQ(allocs, 0u)
      << "two-aspect non-blocking invoke allocated in steady state";
  // Both aspects really ran on every call (guard+entry+postaction through
  // the compiled chain), so zero allocations wasn't zero work.
  const auto total = static_cast<std::uint64_t>(kWarmup + kMeasured);
  EXPECT_EQ(entries.load(), 2 * total);
  EXPECT_EQ(posts.load(), 2 * total);
  EXPECT_GE(proxy.moderator().fast_admissions(),
            static_cast<std::uint64_t>(kMeasured));
}

}  // namespace
}  // namespace amf::core

#include "core/moderator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/aspect.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

// A hook trace that tests may read WHILE blocked callers keep evaluating
// guards (which append under the moderator lock, not under any lock the
// test holds) — hence its own mutex.
class SyncTrace {
 public:
  void push(std::string s) {
    std::scoped_lock lock(mu_);
    entries_.push_back(std::move(s));
  }
  bool contains(const std::string& s) const {
    std::scoped_lock lock(mu_);
    return std::find(entries_.begin(), entries_.end(), s) != entries_.end();
  }
  std::ptrdiff_t index_of(const std::string& s) const {
    std::scoped_lock lock(mu_);
    return std::find(entries_.begin(), entries_.end(), s) -
           entries_.begin();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> entries_;
};

// Records every hook invocation into a shared trace.
class ProbeAspect final : public Aspect {
 public:
  ProbeAspect(std::string name, SyncTrace& trace,
              Decision verdict = Decision::kResume)
      : name_(std::move(name)), trace_(&trace), verdict_(verdict) {}

  std::string_view name() const override { return name_; }

  void set_verdict(Decision d) { verdict_.store(d); }

  void on_arrive(InvocationContext&) override {
    trace_->push(name_ + ".arrive");
  }
  Decision precondition(InvocationContext&) override {
    trace_->push(name_ + ".pre");
    return verdict_.load();
  }
  void entry(InvocationContext&) override { trace_->push(name_ + ".entry"); }
  void postaction(InvocationContext&) override {
    trace_->push(name_ + ".post");
  }
  void on_cancel(InvocationContext&) override {
    trace_->push(name_ + ".cancel");
  }

 private:
  std::string name_;
  SyncTrace* trace_;
  std::atomic<Decision> verdict_;  // settable from test threads
};

bool contains(const SyncTrace& trace, const std::string& s) {
  return trace.contains(s);
}

std::ptrdiff_t index_of(const SyncTrace& trace, const std::string& s) {
  return trace.index_of(s);
}

TEST(ModeratorTest, NoAspectsAdmitsImmediately) {
  AspectModerator moderator;
  InvocationContext ctx(MethodId::of("bare"));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  const auto stats = moderator.stats(MethodId::of("bare"));
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ModeratorTest, ChainRunsInKindOrderPostReversed) {
  // Fig. 14: auth.pre, sync.pre, (body), sync.post, auth.post.
  AspectModerator moderator;
  SyncTrace trace;
  const auto m = MethodId::of("ordered");
  const auto kAuth = AspectKind::of("t1-auth");
  const auto kSync = AspectKind::of("t1-sync");
  moderator.bank().set_kind_order({kAuth, kSync});
  moderator.register_aspect(m, kSync,
                            std::make_shared<ProbeAspect>("sync", trace));
  moderator.register_aspect(m, kAuth,
                            std::make_shared<ProbeAspect>("auth", trace));

  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);

  EXPECT_LT(index_of(trace, "auth.pre"), index_of(trace, "sync.pre"));
  EXPECT_LT(index_of(trace, "auth.entry"), index_of(trace, "sync.entry"));
  EXPECT_LT(index_of(trace, "sync.post"), index_of(trace, "auth.post"));
  EXPECT_LT(index_of(trace, "sync.pre"), index_of(trace, "auth.entry"));
}

TEST(ModeratorTest, EntryRunsOnlyAfterAllGuardsPass) {
  // Repair D1: first aspect resumes but second blocks — the first aspect's
  // entry must NOT have run.
  AspectModerator moderator;
  SyncTrace trace;
  const auto m = MethodId::of("d1");
  auto first = std::make_shared<ProbeAspect>("first", trace);
  auto second =
      std::make_shared<ProbeAspect>("second", trace, Decision::kBlock);
  moderator.register_aspect(m, AspectKind::of("t2-a"), first);
  moderator.register_aspect(m, AspectKind::of("t2-b"), second);

  std::atomic<bool> admitted{false};
  std::jthread caller([&] {
    InvocationContext ctx(m);
    moderator.preactivation(ctx);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_FALSE(contains(trace, "first.entry"));
  // Unblock and verify the entry chain then runs in order.
  second->set_verdict(Decision::kResume);
  // Another invocation's postactivation wakes the waiter; use a completion
  // on the same method from a helper context.
  InvocationContext helper(MethodId::of("d1-helper"));
  ASSERT_EQ(moderator.preactivation(helper), Decision::kResume);
  moderator.postactivation(helper);  // default plan: wakes all methods
  caller.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_TRUE(contains(trace, "first.entry"));
  EXPECT_TRUE(contains(trace, "second.entry"));
}

TEST(ModeratorTest, AbortVetoesWithNote) {
  AspectModerator moderator;
  SyncTrace trace;
  const auto m = MethodId::of("veto");
  moderator.register_aspect(
      m, AspectKind::of("t3"),
      std::make_shared<ProbeAspect>("veto-er", trace, Decision::kAbort));
  InvocationContext ctx(m);
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  ASSERT_TRUE(ctx.abort_error().has_value());
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kAborted);
  EXPECT_EQ(ctx.note("vetoed.by"), "veto-er");
  EXPECT_TRUE(contains(trace, "veto-er.cancel"));
  EXPECT_EQ(moderator.stats(m).aborted, 1u);
  EXPECT_EQ(moderator.stats(m).admitted, 0u);
}

TEST(ModeratorTest, AspectProvidedAbortErrorIsKept) {
  AspectModerator moderator;
  const auto m = MethodId::of("typed-veto");
  moderator.register_aspect(
      m, AspectKind::of("t4"),
      std::make_shared<LambdaAspect>(
          "auth", [](InvocationContext& ctx) {
            ctx.set_abort_error(runtime::make_error(
                runtime::ErrorCode::kUnauthenticated, "no session"));
            return Decision::kAbort;
          }));
  InvocationContext ctx(m);
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kUnauthenticated);
}

TEST(ModeratorTest, BlockedCallerWakesOnPostactivation) {
  AspectModerator moderator;
  const auto m = MethodId::of("gate");
  // Gate open only when a shared flag is set; the flag flips in the
  // completing invocation's postaction (classic guarded-resource shape).
  auto open = std::make_shared<bool>(false);
  moderator.register_aspect(
      m, AspectKind::of("t5"),
      std::make_shared<LambdaAspect>(
          "gate",
          [open](InvocationContext&) {
            return *open ? Decision::kResume : Decision::kBlock;
          }));
  const auto opener = MethodId::of("gate-opener");
  moderator.register_aspect(
      opener, AspectKind::of("t5"),
      std::make_shared<LambdaAspect>(
          "opener", nullptr, nullptr,
          [open](InvocationContext&) { *open = true; }));

  std::atomic<bool> done{false};
  std::jthread blocked([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  EXPECT_EQ(moderator.blocked_waiters(), 1u);

  InvocationContext ctx(opener);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  blocked.join();
  EXPECT_TRUE(done.load());
  EXPECT_GE(moderator.stats(m).block_events, 1u);
}

TEST(ModeratorTest, DeadlineTimesOutBlockedCaller) {
  AspectModerator moderator;
  const auto m = MethodId::of("deadline");
  moderator.register_aspect(
      m, AspectKind::of("t6"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  InvocationContext ctx(m);
  ctx.set_deadline(runtime::RealClock::instance().now() +
                   std::chrono::milliseconds(30));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kTimeout);
  EXPECT_EQ(moderator.stats(m).timed_out, 1u);
}

TEST(ModeratorTest, ManualClockDeadlineHonoredByPolling) {
  runtime::ManualClock clock;
  ModeratorOptions options;
  options.clock = &clock;
  AspectModerator moderator(options);
  const auto m = MethodId::of("manual-deadline");
  moderator.register_aspect(
      m, AspectKind::of("t7"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  InvocationContext ctx(m);
  ctx.set_deadline(clock.now() + std::chrono::milliseconds(5));
  std::jthread ticker([&](std::stop_token st) {
    while (!st.stop_requested()) {
      clock.advance(std::chrono::milliseconds(1));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kTimeout);
}

TEST(ModeratorTest, StopTokenCancelsBlockedCaller) {
  AspectModerator moderator;
  const auto m = MethodId::of("stoppable");
  moderator.register_aspect(
      m, AspectKind::of("t8"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  std::stop_source source;
  std::atomic<bool> cancelled{false};
  std::jthread caller([&] {
    InvocationContext ctx(m);
    ctx.set_stop(source.get_token());
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
    EXPECT_EQ(ctx.abort_error()->code, runtime::ErrorCode::kCancelled);
    cancelled.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(cancelled.load());
  source.request_stop();
  caller.join();
  EXPECT_TRUE(cancelled.load());
  EXPECT_EQ(moderator.stats(m).cancelled, 1u);
}

TEST(ModeratorTest, ShutdownWakesAndRefusesEveryone) {
  AspectModerator moderator;
  const auto m = MethodId::of("shutdown");
  moderator.register_aspect(
      m, AspectKind::of("t9"),
      std::make_shared<LambdaAspect>(
          "never", [](InvocationContext&) { return Decision::kBlock; }));
  std::atomic<int> refused{0};
  {
    std::vector<std::jthread> callers;
    for (int i = 0; i < 4; ++i) {
      callers.emplace_back([&] {
        InvocationContext ctx(m);
        if (moderator.preactivation(ctx) == Decision::kAbort &&
            ctx.abort_error()->code == runtime::ErrorCode::kCancelled) {
          refused.fetch_add(1);
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    moderator.shutdown();
  }
  EXPECT_EQ(refused.load(), 4);
  EXPECT_TRUE(moderator.is_shutdown());
  // New arrivals are refused immediately.
  InvocationContext ctx(m);
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
}

TEST(ModeratorTest, NotificationPlanLimitsWakeups) {
  AspectModerator moderator;
  const auto blocked_m = MethodId::of("np-blocked");
  const auto related = MethodId::of("np-related");
  const auto unrelated = MethodId::of("np-unrelated");
  auto open = std::make_shared<std::atomic<bool>>(false);
  moderator.register_aspect(
      blocked_m, AspectKind::of("t10"),
      std::make_shared<LambdaAspect>(
          "gate", [open](InvocationContext&) {
            return *open ? Decision::kResume : Decision::kBlock;
          }));
  // Completing `unrelated` wakes nobody; completing `related` wakes
  // `blocked_m`.
  moderator.set_notification_plan(unrelated, {});
  moderator.set_notification_plan(related, {blocked_m});

  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    InvocationContext ctx(blocked_m);
    moderator.preactivation(ctx);
    moderator.postactivation(ctx);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  *open = true;  // guard would now pass, but nobody re-evaluates yet

  InvocationContext u(unrelated);
  ASSERT_EQ(moderator.preactivation(u), Decision::kResume);
  moderator.postactivation(u);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load()) << "empty plan must not wake the waiter";

  InvocationContext r(related);
  ASSERT_EQ(moderator.preactivation(r), Decision::kResume);
  moderator.postactivation(r);
  waiter.join();
  EXPECT_TRUE(done.load());
}

TEST(ModeratorTest, AspectRegisteredWhileBlockedTakesEffect) {
  // Run-time adaptability: a waiter blocked on aspect A also honors aspect
  // B registered later; removing A unblocks the waiter.
  AspectModerator moderator;
  SyncTrace trace;
  const auto m = MethodId::of("adapt");
  const auto kA = AspectKind::of("t11-a");
  const auto kB = AspectKind::of("t11-b");
  auto blocker = std::make_shared<ProbeAspect>("A", trace, Decision::kBlock);
  moderator.register_aspect(m, kA, blocker);

  std::atomic<bool> done{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  auto late = std::make_shared<ProbeAspect>("B", trace);
  moderator.register_aspect(m, kB, late);
  ASSERT_TRUE(moderator.bank().remove_aspect(m, kA));
  // Bank changes do not signal by themselves; any completion does.
  InvocationContext helper(MethodId::of("adapt-helper"));
  ASSERT_EQ(moderator.preactivation(helper), Decision::kResume);
  moderator.postactivation(helper);
  waiter.join();
  EXPECT_TRUE(done.load());
  // The late aspect participated fully: arrive (retroactive), pre, entry,
  // post.
  EXPECT_TRUE(contains(trace, "B.arrive"));
  EXPECT_TRUE(contains(trace, "B.entry"));
  EXPECT_TRUE(contains(trace, "B.post"));
}

TEST(ModeratorTest, PostactivationUsesAdmittedChain) {
  // An aspect registered between admission and postactivation must not get
  // a postaction it never entered for.
  AspectModerator moderator;
  SyncTrace trace;
  const auto m = MethodId::of("admitted-chain");
  moderator.register_aspect(m, AspectKind::of("t12-a"),
                            std::make_shared<ProbeAspect>("early", trace));
  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.register_aspect(m, AspectKind::of("t12-b"),
                            std::make_shared<ProbeAspect>("late", trace));
  moderator.postactivation(ctx);
  EXPECT_TRUE(contains(trace, "early.post"));
  EXPECT_FALSE(contains(trace, "late.post"));
}

TEST(ModeratorTest, EventLogRecordsProtocolPhases) {
  runtime::EventLog log;
  ModeratorOptions options;
  options.log = &log;
  AspectModerator moderator(options);
  const auto m = MethodId::of("logged");
  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  EXPECT_TRUE(log.happened_before("moderator", "preactivation:logged",
                                  "moderator", "admitted:logged"));
  EXPECT_TRUE(log.happened_before("moderator", "admitted:logged",
                                  "moderator", "postactivation:logged"));
  // All three share the invocation id.
  EXPECT_EQ(log.by_invocation(ctx.id()).size(), 3u);
}

TEST(ModeratorTest, StatsTrackBlockedEvents) {
  AspectModerator moderator;
  const auto m = MethodId::of("stats");
  auto open = std::make_shared<bool>(false);
  moderator.register_aspect(
      m, AspectKind::of("t13"),
      std::make_shared<LambdaAspect>(
          "gate", [open](InvocationContext&) {
            return *open ? Decision::kResume : Decision::kBlock;
          }));
  std::jthread waiter([&] {
    InvocationContext ctx(m);
    moderator.preactivation(ctx);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto opener = MethodId::of("stats-opener");
  moderator.register_aspect(
      opener, AspectKind::of("t13"),
      std::make_shared<LambdaAspect>("opener", nullptr, nullptr,
                                     [open](InvocationContext&) {
                                       *open = true;
                                     }));
  InvocationContext ctx(opener);
  moderator.preactivation(ctx);
  moderator.postactivation(ctx);
  waiter.join();
  const auto stats = moderator.stats(m);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_GE(stats.block_events, 1u);
}

TEST(ModeratorTest, BlockedByNoteNamesTheAspect) {
  AspectModerator moderator;
  const auto m = MethodId::of("note");
  moderator.register_aspect(
      m, AspectKind::of("t14"),
      std::make_shared<LambdaAspect>(
          "stubborn", [](InvocationContext&) { return Decision::kBlock; }));
  InvocationContext ctx(m);
  ctx.set_deadline(runtime::RealClock::instance().now() +
                   std::chrono::milliseconds(5));
  EXPECT_EQ(moderator.preactivation(ctx), Decision::kAbort);
  EXPECT_EQ(ctx.note("blocked.by"), "stubborn");
}

}  // namespace
}  // namespace amf::core

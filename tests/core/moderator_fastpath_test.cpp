// Tests for the optimistic read-side admission fast path (DESIGN.md §11).
//
// What must hold:
//   * non-blocking chains (every aspect declares the capability, no plan
//     names the method) admit AND complete without the shard mutex — the
//     fast counters prove engagement,
//   * any blocking aspect, plan membership, or a blocked waiter anywhere
//     pushes the invocation back onto the locked slow path (the no-plan
//     completion contract is a broadcast: a fast completion must never
//     strand a sleeper),
//   * recomposition and quarantine stay safe while readers race through
//     the optimistic path: no guard or entry ever observes an aspect that
//     was retired by a completed recompose, and G4 entry/postaction
//     pairing holds for every aspect under the hammer,
//   * grouped readers-writer moderation keeps its exclusion invariant even
//     when reader admissions go lock-free (the writer's raised `lockers`
//     defeats optimistic validation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aspects/observability.hpp"
#include "aspects/synchronization.hpp"
#include "core/aspect.hpp"
#include "core/moderator.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

/// Fast-capable aspect that counts every hook invocation and records a
/// violation when a guard or entry runs after the aspect was retired from
/// the composition (postactions are exempt: G4 pairs them with entries
/// that committed before retirement).
class ProbeFastAspect final : public Aspect {
 public:
  explicit ProbeFastAspect(std::string name) : name_(std::move(name)) {}

  std::string_view name() const override { return name_; }
  bool nonblocking(runtime::MethodId) const override { return true; }

  Decision precondition(InvocationContext&) override {
    if (retired_.load(std::memory_order_seq_cst)) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    guards_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kResume;
  }
  void entry(InvocationContext&) override {
    if (retired_.load(std::memory_order_seq_cst)) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    entries_.fetch_add(1, std::memory_order_relaxed);
  }
  void postaction(InvocationContext&) override {
    posts_.fetch_add(1, std::memory_order_relaxed);
  }

  void set_retired(bool retired) {
    retired_.store(retired, std::memory_order_seq_cst);
  }
  std::uint64_t guards() const { return guards_.load(); }
  std::uint64_t entries() const { return entries_.load(); }
  std::uint64_t posts() const { return posts_.load(); }
  std::uint64_t violations() const { return violations_.load(); }

 private:
  std::string name_;
  std::atomic<bool> retired_{false};
  std::atomic<std::uint64_t> guards_{0};
  std::atomic<std::uint64_t> entries_{0};
  std::atomic<std::uint64_t> posts_{0};
  std::atomic<std::uint64_t> violations_{0};
};

/// Quarantine-policy guard that throws while poisoned. Declared fast-
/// capable so faults can trip ON the optimistic path.
class PoisonableGuard final : public Aspect {
 public:
  std::string_view name() const override { return "poisonable"; }
  bool nonblocking(runtime::MethodId) const override { return true; }
  FaultPolicy fault_policy() const override {
    return FaultPolicy::quarantine(3);
  }

  Decision precondition(InvocationContext&) override {
    guards_.fetch_add(1, std::memory_order_relaxed);
    if (poisoned_.load(std::memory_order_relaxed)) {
      throw std::runtime_error("poisoned guard");
    }
    return Decision::kResume;
  }

  void set_poisoned(bool p) {
    poisoned_.store(p, std::memory_order_relaxed);
  }
  std::uint64_t guards() const { return guards_.load(); }

 private:
  std::atomic<bool> poisoned_{false};
  std::atomic<std::uint64_t> guards_{0};
};

// --- engagement ----------------------------------------------------------

TEST(ModeratorFastPathTest, NonblockingChainAdmitsAndCompletesLockFree) {
  AspectModerator moderator;
  const auto m = MethodId::of("fp-engage");
  auto probe = std::make_shared<ProbeFastAspect>("fp-probe");
  auto second = std::make_shared<ProbeFastAspect>("fp-second");
  moderator.register_aspect(m, AspectKind::of("fp-probe"), probe);
  moderator.register_aspect(m, AspectKind::of("fp-second"), second);

  constexpr std::uint64_t kOps = 100;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
  }
  // Single-threaded, no waiters, no plan: every op takes the fast path.
  EXPECT_EQ(moderator.fast_admissions(), kOps);
  EXPECT_EQ(moderator.fast_completions(), kOps);
  EXPECT_EQ(probe->guards(), kOps);
  EXPECT_EQ(probe->entries(), kOps);
  EXPECT_EQ(probe->posts(), kOps);
  EXPECT_EQ(second->entries(), kOps);
  EXPECT_EQ(moderator.stats(m).admitted, kOps);
  EXPECT_EQ(moderator.stats(m).completed, kOps);
}

TEST(ModeratorFastPathTest, BlockingAspectStaysOnSlowPath) {
  AspectModerator moderator;
  const auto m = MethodId::of("fp-slow");
  moderator.register_aspect(m, AspectKind::of("fp-excl"),
                            std::make_shared<aspects::MutualExclusionAspect>());
  for (int i = 0; i < 10; ++i) {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
  }
  EXPECT_EQ(moderator.fast_admissions(), 0u);
  EXPECT_EQ(moderator.fast_completions(), 0u);
  EXPECT_EQ(moderator.stats(m).admitted, 10u);
}

TEST(ModeratorFastPathTest, WakeTargetOfAPlanIsIneligible) {
  // A method some plan names as a wake target depends on cross-method
  // completions for its re-evaluation; it must never skip the shard lock
  // even when its own chain is fully non-blocking.
  AspectModerator moderator;
  const auto target = MethodId::of("fp-target");
  const auto other = MethodId::of("fp-other");
  moderator.register_aspect(target, AspectKind::of("fp-t"),
                            std::make_shared<ProbeFastAspect>("t"));
  moderator.set_notification_plan(other, {target});

  for (int i = 0; i < 5; ++i) {
    InvocationContext ctx(target);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
  }
  EXPECT_EQ(moderator.fast_admissions(), 0u);
  EXPECT_EQ(moderator.fast_completions(), 0u);
}

// --- the sleeper broadcast contract --------------------------------------

TEST(ModeratorFastPathTest, FastCompletionDefersWhileAnyWaiterSleeps) {
  // The no-plan default wakes EVERY method on completion. A fast-eligible
  // helper completing while an unrelated caller is blocked must fall back
  // to the locked, broadcasting path — otherwise the waiter sleeps through
  // the state change it is waiting for.
  AspectModerator moderator;
  const auto gated = MethodId::of("fp-gated");
  const auto helper = MethodId::of("fp-helper");  // empty chain: eligible
  std::atomic<bool> open{false};
  moderator.register_aspect(
      gated, AspectKind::of("fp-gate"),
      std::make_shared<LambdaAspect>("gate", [&](InvocationContext&) {
        return open.load() ? Decision::kResume : Decision::kBlock;
      }));

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(gated);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_FALSE(admitted.load());

  open.store(true);
  InvocationContext ctx(helper);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);  // must broadcast: a sleeper is registered
  waiter.join();
  EXPECT_TRUE(admitted.load());
  // The helper's completion saw the sleeper and took the slow path.
  EXPECT_EQ(moderator.fast_completions(), 0u);
}

// --- recomposition + quarantine hammer -----------------------------------

TEST(ModeratorFastPathTest, HammerSurvivesRecompositionAndQuarantine) {
  AspectModerator moderator;
  const auto m = MethodId::of("fp-hammer");
  auto base = std::make_shared<ProbeFastAspect>("fp-base");
  auto flip = std::make_shared<ProbeFastAspect>("fp-flip");
  auto poison = std::make_shared<PoisonableGuard>();
  const auto flip_kind = AspectKind::of("fp-flip");
  moderator.register_aspect(m, AspectKind::of("fp-base"), base);
  moderator.register_aspect(m, AspectKind::of("fp-poison"), poison);

  constexpr int kReaders = 3;
  constexpr int kOpsPerReader = 400;
  std::atomic<std::uint64_t> resumed{0};
  std::atomic<std::uint64_t> aborted{0};
  std::atomic<bool> stop_mutating{false};

  // Poisoned from the start: the first three faulting guards (booked on
  // whichever path the readers are on, including the optimistic one) trip
  // the quarantine, after which the chain recomposes without the guard.
  poison->set_poisoned(true);

  {
    std::vector<std::jthread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        for (int i = 0; i < kOpsPerReader; ++i) {
          InvocationContext ctx(m);
          if (moderator.preactivation(ctx) == Decision::kResume) {
            resumed.fetch_add(1);
            moderator.postactivation(ctx);
          } else {
            aborted.fetch_add(1);  // poisoned guard vetoed this one
          }
        }
      });
    }
    std::jthread mutator([&] {
      while (!stop_mutating.load()) {
        // Flip the extra aspect into the composition and back out. After
        // remove_aspect returns, the recompose barrier has drained every
        // burst and span that could still see the old chain — any later
        // guard/entry on `flip` is a protocol violation.
        flip->set_retired(false);
        moderator.register_aspect(m, flip_kind, flip);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        moderator.bank().remove_aspect(m, flip_kind);
        flip->set_retired(true);
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
    for (auto& r : readers) r.join();
    stop_mutating.store(true);
  }

  EXPECT_EQ(resumed.load() + aborted.load(),
            static_cast<std::uint64_t>(kReaders * kOpsPerReader));
  // No guard or entry ever observed the retired aspect.
  EXPECT_EQ(flip->violations(), 0u);
  EXPECT_EQ(base->violations(), 0u);
  // G4: every committed entry was paired with exactly one postaction.
  EXPECT_EQ(base->entries(), base->posts());
  EXPECT_EQ(flip->entries(), flip->posts());
  EXPECT_EQ(moderator.stats(m).completed, resumed.load());
  // The quarantine tripped (three faults booked against the guard) and
  // aborted callers carried structured errors, not crashes.
  EXPECT_GE(moderator.fault_count(poison.get()), 3u);
  EXPECT_GE(aborted.load(), 3u);
  // The optimistic path engaged between recompositions.
  EXPECT_GT(moderator.fast_admissions(), 0u);
}

// --- grouped readers-writer exclusion ------------------------------------

TEST(ModeratorFastPathTest, GroupedRwKeepsExclusionWithFastReaders) {
  AspectModerator moderator;
  const auto read = MethodId::of("fp-rw-read");
  const auto write = MethodId::of("fp-rw-write");
  auto rw = std::make_shared<aspects::ReadersWriterAspect>();
  rw->add_reader(read);
  rw->add_writer(write);
  moderator.register_aspect(read, AspectKind::of("fp-rw"), rw);
  moderator.register_aspect(write, AspectKind::of("fp-rw"), rw);
  // No notification plan: the default broadcast keeps every wake correct,
  // and plan-free methods are what the fast path accelerates.

  // Warm-up with no writer in sight: reader admissions must go lock-free.
  for (int i = 0; i < 100; ++i) {
    InvocationContext ctx(read);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
  }
  EXPECT_GT(moderator.fast_admissions(), 0u);

  std::atomic<int> readers_inside{0};
  std::atomic<int> writers_inside{0};
  std::atomic<std::uint64_t> violations{0};
  constexpr int kReaderThreads = 3;
  constexpr int kReadsPerThread = 300;
  constexpr int kWrites = 100;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kReaderThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kReadsPerThread; ++i) {
          InvocationContext ctx(read);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          readers_inside.fetch_add(1);
          if (writers_inside.load() != 0) violations.fetch_add(1);
          readers_inside.fetch_sub(1);
          moderator.postactivation(ctx);
        }
      });
    }
    threads.emplace_back([&] {
      for (int i = 0; i < kWrites; ++i) {
        InvocationContext ctx(write);
        ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
        const int w = writers_inside.fetch_add(1);
        if (w != 0 || readers_inside.load() != 0) violations.fetch_add(1);
        writers_inside.fetch_sub(1);
        moderator.postactivation(ctx);
      }
    });
  }
  EXPECT_EQ(violations.load(), 0u) << "readers-writer exclusion broken";
  EXPECT_EQ(moderator.stats(read).completed,
            static_cast<std::uint64_t>(100 + kReaderThreads * kReadsPerThread));
  EXPECT_EQ(moderator.stats(write).completed,
            static_cast<std::uint64_t>(kWrites));
}

}  // namespace
}  // namespace amf::core

#include "core/context.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/bank.hpp"  // completes BankEntry for the chain assertions
#include "core/decision.hpp"

namespace amf::core {
namespace {

using runtime::MethodId;

TEST(InvocationContextTest, IdsAreProcessUnique) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(InvocationContext(MethodId::of("m")).id());
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(InvocationContextTest, IdsUniqueAcrossThreads) {
  std::vector<std::vector<std::uint64_t>> per_thread(4);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 1000; ++i) {
          per_thread[t].push_back(InvocationContext(MethodId::of("m")).id());
        }
      });
    }
  }
  std::set<std::uint64_t> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4000u);
}

TEST(InvocationContextTest, DefaultsAreAnonymousAndUnconstrained) {
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_FALSE(ctx.principal().authenticated());
  EXPECT_EQ(ctx.priority(), 0);
  EXPECT_FALSE(ctx.deadline().has_value());
  EXPECT_FALSE(ctx.stop().has_value());
  EXPECT_FALSE(ctx.abort_error().has_value());
  EXPECT_EQ(ctx.blocked_count(), 0u);
  EXPECT_FALSE(ctx.body_succeeded());
  EXPECT_EQ(ctx.admitted_chain(), nullptr);
}

TEST(InvocationContextTest, NotesOverwriteAndRead) {
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(ctx.note("k"), std::nullopt);
  ctx.set_note("k", "v1");
  EXPECT_EQ(ctx.note("k"), "v1");
  ctx.set_note("k", "v2");
  EXPECT_EQ(ctx.note("k"), "v2");
  ctx.set_note("other", "x");
  EXPECT_EQ(ctx.note("k"), "v2");
}

TEST(NoteStoreTest, OverflowSpillsPreservingInsertionOrder) {
  NoteStore store;
  // Two past the inline capacity, so the last two land in the spill vector.
  const std::size_t total = NoteStore::kInlineSlots + 2;
  for (std::size_t i = 0; i < total; ++i) {
    store.set("k" + std::to_string(i), "v" + std::to_string(i));
  }
  EXPECT_EQ(store.size(), total);
  // Every key resolves, including the spilled ones.
  for (std::size_t i = 0; i < total; ++i) {
    const std::string* v = store.find("k" + std::to_string(i));
    ASSERT_NE(v, nullptr) << "k" << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  // for_each walks inline slots then spill — exactly insertion order.
  std::vector<std::string> keys;
  store.for_each([&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
  });
  ASSERT_EQ(keys.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(keys[i], "k" + std::to_string(i));
  }
}

TEST(NoteStoreTest, OverwriteKeepsPositionAndSize) {
  NoteStore store;
  const std::size_t total = NoteStore::kInlineSlots + 2;
  for (std::size_t i = 0; i < total; ++i) {
    store.set("k" + std::to_string(i), "old");
  }
  // Overwrite one inline slot and one spilled slot.
  store.set("k1", "new-inline");
  store.set("k" + std::to_string(total - 1), "new-spill");
  EXPECT_EQ(store.size(), total);
  std::vector<std::string> keys;
  store.for_each([&](std::string_view k, std::string_view) {
    keys.emplace_back(k);
  });
  ASSERT_EQ(keys.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(keys[i], "k" + std::to_string(i)) << "overwrite moved a key";
  }
  EXPECT_EQ(*store.find("k1"), "new-inline");
  EXPECT_EQ(*store.find("k" + std::to_string(total - 1)), "new-spill");
}

TEST(NoteStoreTest, SurvivesCopy) {
  NoteStore store;
  const std::size_t total = NoteStore::kInlineSlots + 2;
  for (std::size_t i = 0; i < total; ++i) {
    store.set("k" + std::to_string(i), "v" + std::to_string(i));
  }
  NoteStore copy = store;
  store.set("k0", "mutated-after-copy");
  EXPECT_EQ(copy.size(), total);
  for (std::size_t i = 0; i < total; ++i) {
    const std::string* v = copy.find("k" + std::to_string(i));
    ASSERT_NE(v, nullptr) << "k" << i;
    EXPECT_EQ(*v, "v" + std::to_string(i));
  }
  EXPECT_EQ(*store.find("k0"), "mutated-after-copy");
}

TEST(InvocationContextTest, NoteViewAvoidsCopiesAndTracksOverwrites) {
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_FALSE(ctx.note_view("missing").has_value());
  ctx.set_note("shed.by", "limiter");
  auto v = ctx.note_view("shed.by");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "limiter");
  // The view aliases the stored string: an overwrite through set_note is
  // visible via a fresh lookup, and lookups never allocate a std::string.
  ctx.set_note("shed.by", "breaker");
  EXPECT_EQ(ctx.note_view("shed.by").value(), "breaker");
}

TEST(InvocationContextTest, BlockedCountAccumulates) {
  InvocationContext ctx(MethodId::of("m"));
  ctx.note_blocked();
  ctx.note_blocked();
  EXPECT_EQ(ctx.blocked_count(), 2u);
}

TEST(InvocationContextTest, MethodIsFixedAtConstruction) {
  const auto m = MethodId::of("fixed");
  InvocationContext ctx(m);
  EXPECT_EQ(ctx.method(), m);
  EXPECT_EQ(ctx.method().name(), "fixed");
}

TEST(DecisionTest, NamesAreStable) {
  EXPECT_EQ(to_string(Decision::kResume), "resume");
  EXPECT_EQ(to_string(Decision::kBlock), "block");
  EXPECT_EQ(to_string(Decision::kAbort), "abort");
  EXPECT_EQ(to_string(InvocationStatus::kCompleted), "completed");
  EXPECT_EQ(to_string(InvocationStatus::kAborted), "aborted");
  EXPECT_EQ(to_string(InvocationStatus::kTimedOut), "timed-out");
  EXPECT_EQ(to_string(InvocationStatus::kCancelled), "cancelled");
  EXPECT_EQ(to_string(InvocationStatus::kFailed), "failed");
}

}  // namespace
}  // namespace amf::core

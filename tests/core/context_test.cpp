#include "core/context.hpp"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "core/bank.hpp"  // completes BankEntry for the chain assertions
#include "core/decision.hpp"

namespace amf::core {
namespace {

using runtime::MethodId;

TEST(InvocationContextTest, IdsAreProcessUnique) {
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(InvocationContext(MethodId::of("m")).id());
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(InvocationContextTest, IdsUniqueAcrossThreads) {
  std::vector<std::vector<std::uint64_t>> per_thread(4);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 1000; ++i) {
          per_thread[t].push_back(InvocationContext(MethodId::of("m")).id());
        }
      });
    }
  }
  std::set<std::uint64_t> all;
  for (const auto& v : per_thread) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), 4000u);
}

TEST(InvocationContextTest, DefaultsAreAnonymousAndUnconstrained) {
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_FALSE(ctx.principal().authenticated());
  EXPECT_EQ(ctx.priority(), 0);
  EXPECT_FALSE(ctx.deadline().has_value());
  EXPECT_FALSE(ctx.stop().has_value());
  EXPECT_FALSE(ctx.abort_error().has_value());
  EXPECT_EQ(ctx.blocked_count(), 0u);
  EXPECT_FALSE(ctx.body_succeeded());
  EXPECT_EQ(ctx.admitted_chain(), nullptr);
}

TEST(InvocationContextTest, NotesOverwriteAndRead) {
  InvocationContext ctx(MethodId::of("m"));
  EXPECT_EQ(ctx.note("k"), std::nullopt);
  ctx.set_note("k", "v1");
  EXPECT_EQ(ctx.note("k"), "v1");
  ctx.set_note("k", "v2");
  EXPECT_EQ(ctx.note("k"), "v2");
  ctx.set_note("other", "x");
  EXPECT_EQ(ctx.note("k"), "v2");
}

TEST(InvocationContextTest, BlockedCountAccumulates) {
  InvocationContext ctx(MethodId::of("m"));
  ctx.note_blocked();
  ctx.note_blocked();
  EXPECT_EQ(ctx.blocked_count(), 2u);
}

TEST(InvocationContextTest, MethodIsFixedAtConstruction) {
  const auto m = MethodId::of("fixed");
  InvocationContext ctx(m);
  EXPECT_EQ(ctx.method(), m);
  EXPECT_EQ(ctx.method().name(), "fixed");
}

TEST(DecisionTest, NamesAreStable) {
  EXPECT_EQ(to_string(Decision::kResume), "resume");
  EXPECT_EQ(to_string(Decision::kBlock), "block");
  EXPECT_EQ(to_string(Decision::kAbort), "abort");
  EXPECT_EQ(to_string(InvocationStatus::kCompleted), "completed");
  EXPECT_EQ(to_string(InvocationStatus::kAborted), "aborted");
  EXPECT_EQ(to_string(InvocationStatus::kTimedOut), "timed-out");
  EXPECT_EQ(to_string(InvocationStatus::kCancelled), "cancelled");
  EXPECT_EQ(to_string(InvocationStatus::kFailed), "failed");
}

}  // namespace
}  // namespace amf::core

// Tests for the sharded moderator lock (one mutex + condvar per method).
//
// What must hold after the refactor:
//   * methods sharing an aspect OBJECT still admit atomically as a group
//     (repair D2 — the bank-derived lock group),
//   * cross-method wake plans still work: postactions and the guards they
//     enable are serialized via ordered acquisition of the completed
//     method's shard plus its wake targets,
//   * shutdown reaches waiters parked on DIFFERENT methods' condvars,
//   * independent methods make progress concurrently (no global mutex).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "aspects/synchronization.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

// --- lock-group atomicity (D2 across shards) -----------------------------

TEST(ModeratorShardingTest, SharedAspectGroupStaysMutuallyExclusive) {
  // ONE MutualExclusionAspect on two methods forms an exclusion group; the
  // sharded moderator must admit across BOTH methods atomically, never two
  // bodies at once. A max-concurrency probe would race if admission were
  // per-method only.
  AspectModerator moderator;
  const auto a = MethodId::of("shard-group-a");
  const auto b = MethodId::of("shard-group-b");
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("shard-excl"), excl);
  moderator.register_aspect(b, AspectKind::of("shard-excl"), excl);
  moderator.set_notification_plan(a, {a, b});
  moderator.set_notification_plan(b, {a, b});

  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> completed{0};
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const auto method = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(method);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          const int now = inside.fetch_add(1) + 1;
          int seen = max_inside.load();
          while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
          }
          inside.fetch_sub(1);
          moderator.postactivation(ctx);
          completed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(max_inside.load(), 1) << "exclusion group admitted two bodies";
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(moderator.stats(a).admitted + moderator.stats(b).admitted,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

// --- cross-method wake plans under concurrency ---------------------------

TEST(ModeratorShardingTest, PlannedProducerConsumerAcrossTwoMethods) {
  // The paper's open→assign / assign→open shape, concurrently: producers
  // blocked on "full" are woken only by consumer completions and vice
  // versa. State is coupled through shared captures (invisible to the
  // bank), so correctness rests on the plan-target lock acquisition.
  AspectModerator moderator;
  const auto produce = MethodId::of("shard-produce");
  const auto consume = MethodId::of("shard-consume");
  auto state = std::make_shared<aspects::BoundedResourceState>(4);
  moderator.register_aspect(
      produce, AspectKind::of("shard-sync"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kProducer, state));
  moderator.register_aspect(
      consume, AspectKind::of("shard-sync"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kConsumer, state));
  moderator.set_notification_plan(produce, {consume, produce});
  moderator.set_notification_plan(consume, {produce, consume});

  constexpr int kPairs = 4;
  constexpr int kOps = 500;
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> workers;
    for (int p = 0; p < kPairs; ++p) {
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          InvocationContext ctx(produce);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          produced.fetch_add(1);
          moderator.postactivation(ctx);
        }
      });
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          InvocationContext ctx(consume);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          consumed.fetch_add(1);
          moderator.postactivation(ctx);
        }
      });
    }
  }
  EXPECT_EQ(produced.load(), kPairs * kOps);
  EXPECT_EQ(consumed.load(), kPairs * kOps);
  // All slots drained: every reservation was matched by a consumption.
  EXPECT_EQ(state->reserved, 0u);
  EXPECT_EQ(state->committed, 0u);
  EXPECT_EQ(moderator.stats(produce).completed,
            static_cast<std::uint64_t>(kPairs * kOps));
  EXPECT_EQ(moderator.stats(consume).completed,
            static_cast<std::uint64_t>(kPairs * kOps));
}

TEST(ModeratorShardingTest, PlanWakesWaiterOnOtherMethodsShard) {
  // A waiter parked on method X's condvar must be woken by a completion of
  // method Y when Y's plan names X — across two different shard mutexes.
  AspectModerator moderator;
  const auto waiting = MethodId::of("shard-waiting");
  const auto releasing = MethodId::of("shard-releasing");
  auto gate = std::make_shared<bool>(false);
  moderator.register_aspect(
      waiting, AspectKind::of("shard-gate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return *gate ? Decision::kResume : Decision::kBlock;
      }));
  moderator.register_aspect(
      releasing, AspectKind::of("shard-open"),
      std::make_shared<LambdaAspect>("open", nullptr, nullptr,
                                     [gate](InvocationContext&) {
                                       *gate = true;
                                     }));
  moderator.set_notification_plan(releasing, {waiting});

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(waiting);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(moderator.blocked_waiters(), 1u);

  InvocationContext ctx(releasing);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

// --- shutdown across shards ----------------------------------------------

TEST(ModeratorShardingTest, ShutdownReachesWaitersOnDifferentMethods) {
  AspectModerator moderator;
  constexpr int kMethods = 4;
  constexpr int kWaitersPerMethod = 3;
  std::vector<MethodId> methods;
  for (int m = 0; m < kMethods; ++m) {
    const auto id = MethodId::of("shard-shut-" + std::to_string(m));
    methods.push_back(id);
    moderator.register_aspect(
        id, AspectKind::of("shard-never"),
        std::make_shared<LambdaAspect>(
            "never", [](InvocationContext&) { return Decision::kBlock; }));
  }

  std::atomic<int> refused{0};
  {
    std::vector<std::jthread> waiters;
    for (const auto method : methods) {
      for (int w = 0; w < kWaitersPerMethod; ++w) {
        waiters.emplace_back([&, method] {
          InvocationContext ctx(method);
          if (moderator.preactivation(ctx) == Decision::kAbort &&
              ctx.abort_error()->code == runtime::ErrorCode::kCancelled) {
            refused.fetch_add(1);
          }
        });
      }
    }
    // Let the waiters park on their respective shard condvars.
    while (moderator.blocked_waiters() <
           static_cast<std::uint64_t>(kMethods * kWaitersPerMethod)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    moderator.shutdown();
  }
  EXPECT_EQ(refused.load(), kMethods * kWaitersPerMethod);
  EXPECT_TRUE(moderator.is_shutdown());
  InvocationContext late(methods.front());
  EXPECT_EQ(moderator.preactivation(late), Decision::kAbort);
}

// --- independence of unrelated methods -----------------------------------

TEST(ModeratorShardingTest, IndependentMethodsAllComplete) {
  // Methods with disjoint aspects and self-only plans share no shard; the
  // heavy cross-thread hammering must preserve each method's own guard
  // invariant (its private exclusion limit) and lose no completion.
  AspectModerator moderator;
  constexpr int kMethods = 4;
  constexpr int kThreadsPerMethod = 2;
  constexpr int kOps = 300;
  std::vector<MethodId> methods;
  std::vector<std::shared_ptr<aspects::MutualExclusionAspect>> aspects_;
  for (int m = 0; m < kMethods; ++m) {
    const auto id = MethodId::of("shard-ind-" + std::to_string(m));
    methods.push_back(id);
    auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
    aspects_.push_back(excl);
    moderator.register_aspect(id, AspectKind::of("shard-ind-excl"), excl);
    moderator.set_notification_plan(id, {id});
  }

  std::vector<std::atomic<int>> inside(kMethods);
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> workers;
    for (int m = 0; m < kMethods; ++m) {
      for (int t = 0; t < kThreadsPerMethod; ++t) {
        workers.emplace_back([&, m] {
          for (int i = 0; i < kOps; ++i) {
            InvocationContext ctx(methods[m]);
            ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
            if (inside[m].fetch_add(1) + 1 > 1) violations.fetch_add(1);
            inside[m].fetch_sub(1);
            moderator.postactivation(ctx);
          }
        });
      }
    }
  }
  EXPECT_EQ(violations.load(), 0);
  for (int m = 0; m < kMethods; ++m) {
    EXPECT_EQ(moderator.stats(methods[m]).completed,
              static_cast<std::uint64_t>(kThreadsPerMethod * kOps));
    EXPECT_EQ(aspects_[m]->active(), 0u);
  }
}

// --- adaptability across shard regrouping --------------------------------

TEST(ModeratorShardingTest, RegroupingWhileBlockedTakesEffect) {
  // Registering a SHARED aspect while a caller is blocked changes the
  // caller's lock group mid-wait; the waiter must re-acquire the larger
  // group and still honor both aspects.
  AspectModerator moderator;
  const auto m1 = MethodId::of("shard-regroup-1");
  const auto m2 = MethodId::of("shard-regroup-2");
  auto gate = std::make_shared<std::atomic<bool>>(false);
  moderator.register_aspect(
      m1, AspectKind::of("shard-regate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return gate->load() ? Decision::kResume : Decision::kBlock;
      }));

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m1);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());

  // Join m1 and m2 into one exclusion group while the waiter sleeps.
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(m1, AspectKind::of("shard-rejoin"), excl);
  moderator.register_aspect(m2, AspectKind::of("shard-rejoin"), excl);
  gate->store(true);

  // A completion on m2 (same group, default plan wakes everything) must
  // reach the regrouped waiter.
  InvocationContext ctx(m2);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(excl->active(), 0u);
}

}  // namespace
}  // namespace amf::core

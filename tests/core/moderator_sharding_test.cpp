// Tests for the sharded moderator lock (one mutex + condvar per method).
//
// What must hold after the refactor:
//   * methods sharing an aspect OBJECT still admit atomically as a group
//     (repair D2 — the bank-derived lock group),
//   * cross-method wake plans still work: postactions and the guards they
//     enable are serialized via ordered acquisition of the completed
//     method's shard plus its wake targets,
//   * shutdown reaches waiters parked on DIFFERENT methods' condvars,
//   * independent methods make progress concurrently (no global mutex).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "core/aspect.hpp"
#include "core/moderator.hpp"
#include "aspects/synchronization.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

// --- lock-group atomicity (D2 across shards) -----------------------------

TEST(ModeratorShardingTest, SharedAspectGroupStaysMutuallyExclusive) {
  // ONE MutualExclusionAspect on two methods forms an exclusion group; the
  // sharded moderator must admit across BOTH methods atomically, never two
  // bodies at once. A max-concurrency probe would race if admission were
  // per-method only.
  AspectModerator moderator;
  const auto a = MethodId::of("shard-group-a");
  const auto b = MethodId::of("shard-group-b");
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("shard-excl"), excl);
  moderator.register_aspect(b, AspectKind::of("shard-excl"), excl);
  moderator.set_notification_plan(a, {a, b});
  moderator.set_notification_plan(b, {a, b});

  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<int> completed{0};
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const auto method = (t % 2 == 0) ? a : b;
        for (int i = 0; i < kOpsPerThread; ++i) {
          InvocationContext ctx(method);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          const int now = inside.fetch_add(1) + 1;
          int seen = max_inside.load();
          while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
          }
          inside.fetch_sub(1);
          moderator.postactivation(ctx);
          completed.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(max_inside.load(), 1) << "exclusion group admitted two bodies";
  EXPECT_EQ(completed.load(), kThreads * kOpsPerThread);
  EXPECT_EQ(moderator.stats(a).admitted + moderator.stats(b).admitted,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

// --- cross-method wake plans under concurrency ---------------------------

TEST(ModeratorShardingTest, PlannedProducerConsumerAcrossTwoMethods) {
  // The paper's open→assign / assign→open shape, concurrently: producers
  // blocked on "full" are woken only by consumer completions and vice
  // versa. State is coupled through shared captures (invisible to the
  // bank), so correctness rests on the plan-target lock acquisition.
  AspectModerator moderator;
  const auto produce = MethodId::of("shard-produce");
  const auto consume = MethodId::of("shard-consume");
  auto state = std::make_shared<aspects::BoundedResourceState>(4);
  moderator.register_aspect(
      produce, AspectKind::of("shard-sync"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kProducer, state));
  moderator.register_aspect(
      consume, AspectKind::of("shard-sync"),
      std::make_shared<aspects::BoundedResourceAspect>(
          aspects::BoundedResourceAspect::Role::kConsumer, state));
  moderator.set_notification_plan(produce, {consume, produce});
  moderator.set_notification_plan(consume, {produce, consume});

  constexpr int kPairs = 4;
  constexpr int kOps = 500;
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  {
    std::vector<std::jthread> workers;
    for (int p = 0; p < kPairs; ++p) {
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          InvocationContext ctx(produce);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          produced.fetch_add(1);
          moderator.postactivation(ctx);
        }
      });
      workers.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          InvocationContext ctx(consume);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          consumed.fetch_add(1);
          moderator.postactivation(ctx);
        }
      });
    }
  }
  EXPECT_EQ(produced.load(), kPairs * kOps);
  EXPECT_EQ(consumed.load(), kPairs * kOps);
  // All slots drained: every reservation was matched by a consumption.
  EXPECT_EQ(state->reserved, 0u);
  EXPECT_EQ(state->committed, 0u);
  EXPECT_EQ(moderator.stats(produce).completed,
            static_cast<std::uint64_t>(kPairs * kOps));
  EXPECT_EQ(moderator.stats(consume).completed,
            static_cast<std::uint64_t>(kPairs * kOps));
}

TEST(ModeratorShardingTest, PlanWakesWaiterOnOtherMethodsShard) {
  // A waiter parked on method X's condvar must be woken by a completion of
  // method Y when Y's plan names X — across two different shard mutexes.
  AspectModerator moderator;
  const auto waiting = MethodId::of("shard-waiting");
  const auto releasing = MethodId::of("shard-releasing");
  auto gate = std::make_shared<bool>(false);
  moderator.register_aspect(
      waiting, AspectKind::of("shard-gate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return *gate ? Decision::kResume : Decision::kBlock;
      }));
  moderator.register_aspect(
      releasing, AspectKind::of("shard-open"),
      std::make_shared<LambdaAspect>("open", nullptr, nullptr,
                                     [gate](InvocationContext&) {
                                       *gate = true;
                                     }));
  moderator.set_notification_plan(releasing, {waiting});

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(waiting);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(moderator.blocked_waiters(), 1u);

  InvocationContext ctx(releasing);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  waiter.join();
  EXPECT_TRUE(admitted.load());
}

// --- shutdown across shards ----------------------------------------------

TEST(ModeratorShardingTest, ShutdownReachesWaitersOnDifferentMethods) {
  AspectModerator moderator;
  constexpr int kMethods = 4;
  constexpr int kWaitersPerMethod = 3;
  std::vector<MethodId> methods;
  for (int m = 0; m < kMethods; ++m) {
    const auto id = MethodId::of("shard-shut-" + std::to_string(m));
    methods.push_back(id);
    moderator.register_aspect(
        id, AspectKind::of("shard-never"),
        std::make_shared<LambdaAspect>(
            "never", [](InvocationContext&) { return Decision::kBlock; }));
  }

  std::atomic<int> refused{0};
  {
    std::vector<std::jthread> waiters;
    for (const auto method : methods) {
      for (int w = 0; w < kWaitersPerMethod; ++w) {
        waiters.emplace_back([&, method] {
          InvocationContext ctx(method);
          if (moderator.preactivation(ctx) == Decision::kAbort &&
              ctx.abort_error()->code == runtime::ErrorCode::kCancelled) {
            refused.fetch_add(1);
          }
        });
      }
    }
    // Let the waiters park on their respective shard condvars.
    while (moderator.blocked_waiters() <
           static_cast<std::uint64_t>(kMethods * kWaitersPerMethod)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    moderator.shutdown();
  }
  EXPECT_EQ(refused.load(), kMethods * kWaitersPerMethod);
  EXPECT_TRUE(moderator.is_shutdown());
  InvocationContext late(methods.front());
  EXPECT_EQ(moderator.preactivation(late), Decision::kAbort);
}

// --- independence of unrelated methods -----------------------------------

TEST(ModeratorShardingTest, IndependentMethodsAllComplete) {
  // Methods with disjoint aspects and self-only plans share no shard; the
  // heavy cross-thread hammering must preserve each method's own guard
  // invariant (its private exclusion limit) and lose no completion.
  AspectModerator moderator;
  constexpr int kMethods = 4;
  constexpr int kThreadsPerMethod = 2;
  constexpr int kOps = 300;
  std::vector<MethodId> methods;
  std::vector<std::shared_ptr<aspects::MutualExclusionAspect>> aspects_;
  for (int m = 0; m < kMethods; ++m) {
    const auto id = MethodId::of("shard-ind-" + std::to_string(m));
    methods.push_back(id);
    auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
    aspects_.push_back(excl);
    moderator.register_aspect(id, AspectKind::of("shard-ind-excl"), excl);
    moderator.set_notification_plan(id, {id});
  }

  std::vector<std::atomic<int>> inside(kMethods);
  std::atomic<int> violations{0};
  {
    std::vector<std::jthread> workers;
    for (int m = 0; m < kMethods; ++m) {
      for (int t = 0; t < kThreadsPerMethod; ++t) {
        workers.emplace_back([&, m] {
          for (int i = 0; i < kOps; ++i) {
            InvocationContext ctx(methods[m]);
            ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
            if (inside[m].fetch_add(1) + 1 > 1) violations.fetch_add(1);
            inside[m].fetch_sub(1);
            moderator.postactivation(ctx);
          }
        });
      }
    }
  }
  EXPECT_EQ(violations.load(), 0);
  for (int m = 0; m < kMethods; ++m) {
    EXPECT_EQ(moderator.stats(methods[m]).completed,
              static_cast<std::uint64_t>(kThreadsPerMethod * kOps));
    EXPECT_EQ(aspects_[m]->active(), 0u);
  }
}

// --- adaptability across shard regrouping --------------------------------

TEST(ModeratorShardingTest, RegroupingWhileBlockedTakesEffect) {
  // Registering a SHARED aspect while a caller is blocked changes the
  // caller's lock group mid-wait; the waiter must re-acquire the larger
  // group and still honor both aspects.
  AspectModerator moderator;
  const auto m1 = MethodId::of("shard-regroup-1");
  const auto m2 = MethodId::of("shard-regroup-2");
  auto gate = std::make_shared<std::atomic<bool>>(false);
  moderator.register_aspect(
      m1, AspectKind::of("shard-regate"),
      std::make_shared<LambdaAspect>("gate", [gate](InvocationContext&) {
        return gate->load() ? Decision::kResume : Decision::kBlock;
      }));

  std::atomic<bool> admitted{false};
  std::jthread waiter([&] {
    InvocationContext ctx(m1);
    EXPECT_EQ(moderator.preactivation(ctx), Decision::kResume);
    admitted.store(true);
    moderator.postactivation(ctx);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());

  // Join m1 and m2 into one exclusion group while the waiter sleeps.
  auto excl = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(m1, AspectKind::of("shard-rejoin"), excl);
  moderator.register_aspect(m2, AspectKind::of("shard-rejoin"), excl);
  gate->store(true);

  // A completion on m2 (same group, default plan wakes everything) must
  // reach the regrouped waiter.
  InvocationContext ctx(m2);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(excl->active(), 0u);
}

// --- recomposition barrier (DESIGN.md §10) -------------------------------

TEST(ModeratorShardingTest, RecompositionWaitsForInFlightBodies) {
  // Registering an aspect while a caller is between admission and
  // completion must quiesce: the mutation blocks until the in-flight span
  // closes, and the in-flight call's postactions come from its ADMITTED
  // chain — the late aspect never sees half an invocation.
  AspectModerator moderator;
  const auto m = MethodId::of("shard-bar-quiesce");
  std::atomic<int> late_entries{0};
  std::atomic<int> late_posts{0};
  auto late = std::make_shared<LambdaAspect>(
      "late", nullptr,
      [&](InvocationContext&) { late_entries.fetch_add(1); },
      [&](InvocationContext&) { late_posts.fetch_add(1); });
  moderator.register_aspect(
      m, AspectKind::of("shard-bar-base"),
      std::make_shared<aspects::MutualExclusionAspect>(1));

  std::atomic<bool> in_body{false};
  std::atomic<bool> release{false};
  std::jthread caller([&] {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    in_body.store(true);
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    moderator.postactivation(ctx);
  });
  while (!in_body.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<bool> registered{false};
  std::jthread registrar([&] {
    moderator.register_aspect(m, AspectKind::of("shard-bar-late"), late);
    registered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(registered.load())
      << "registration must wait for the open span";

  release.store(true);
  caller.join();
  registrar.join();
  EXPECT_TRUE(registered.load());
  EXPECT_EQ(late_entries.load(), 0) << "late aspect saw the old admission";
  EXPECT_EQ(late_posts.load(), 0);

  // Subsequent invocations run the full lifecycle of the new composition.
  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  moderator.postactivation(ctx);
  EXPECT_EQ(late_entries.load(), 1);
  EXPECT_EQ(late_posts.load(), 1);
}

TEST(ModeratorShardingTest, SelfMutationPinsPostactivationLockSet) {
  // A body that recomposes its OWN method (allowed: the mutating thread's
  // open span is exempt from the barrier) changes the lock group between
  // admission and completion. Postactivation must pin the admission-time
  // set — strict entry ≺ postaction pairing on the admitted chain — while
  // locking the union with the current composition's completion set.
  AspectModerator moderator;
  const auto m = MethodId::of("shard-pin-self");
  const auto other = MethodId::of("shard-pin-other");
  std::atomic<int> old_posts{0};
  moderator.register_aspect(
      m, AspectKind::of("shard-pin-base"),
      std::make_shared<LambdaAspect>("old", nullptr, nullptr,
                                     [&](InvocationContext&) {
                                       old_posts.fetch_add(1);
                                     }));
  moderator.set_notification_plan(m, {m});

  std::atomic<int> joined_posts{0};
  auto joined = std::make_shared<LambdaAspect>(
      "joined", nullptr, nullptr,
      [&](InvocationContext&) { joined_posts.fetch_add(1); });

  InvocationContext ctx(m);
  ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
  // Mid-call: join m with another method through a shared aspect, growing
  // m's lock group under the admitted invocation.
  moderator.register_aspect(m, AspectKind::of("shard-pin-join"), joined);
  moderator.register_aspect(other, AspectKind::of("shard-pin-join"), joined);
  moderator.postactivation(ctx);

  EXPECT_EQ(old_posts.load(), 1);
  EXPECT_EQ(joined_posts.load(), 0)
      << "postaction must follow the admitted chain, not the new one";

  // The regrouped composition works for fresh calls on both methods.
  InvocationContext c1(m);
  ASSERT_EQ(moderator.preactivation(c1), Decision::kResume);
  moderator.postactivation(c1);
  InvocationContext c2(other);
  ASSERT_EQ(moderator.preactivation(c2), Decision::kResume);
  moderator.postactivation(c2);
  EXPECT_EQ(joined_posts.load(), 2);
}

TEST(ModeratorShardingTest, AspectMigrationHammer) {
  // Forced-interleaving regression for the aspect-migration window: while
  // callers hammer two methods, a mutator repeatedly registers and removes
  // a SHARED aspect that merges and splits their lock groups. Whatever the
  // interleaving, per-method exclusion must hold, every invocation must
  // complete, and the migrating aspect's entry/postaction pairing must be
  // exact (a torn migration would strand one side of a pair).
  AspectModerator moderator;
  const auto a = MethodId::of("shard-mig-a");
  const auto b = MethodId::of("shard-mig-b");
  auto excl_a = std::make_shared<aspects::MutualExclusionAspect>(1);
  auto excl_b = std::make_shared<aspects::MutualExclusionAspect>(1);
  moderator.register_aspect(a, AspectKind::of("shard-mig-excl"), excl_a);
  moderator.register_aspect(b, AspectKind::of("shard-mig-excl"), excl_b);
  moderator.set_notification_plan(a, {a});
  moderator.set_notification_plan(b, {b});

  std::atomic<int> link_entries{0};
  std::atomic<int> link_posts{0};
  auto link = std::make_shared<LambdaAspect>(
      "link", nullptr,
      [&](InvocationContext&) { link_entries.fetch_add(1); },
      [&](InvocationContext&) { link_posts.fetch_add(1); });

  std::array<std::atomic<int>, 2> inside{};
  std::atomic<int> violations{0};
  std::atomic<int> completed{0};
  constexpr int kOps = 150;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        const int mi = t % 2;
        const auto method = (mi == 0) ? a : b;
        for (int i = 0; i < kOps; ++i) {
          InvocationContext ctx(method);
          ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
          if (inside[mi].fetch_add(1) + 1 > 1) violations.fetch_add(1);
          inside[mi].fetch_sub(1);
          moderator.postactivation(ctx);
          completed.fetch_add(1);
        }
      });
    }
    workers.emplace_back([&] {
      // Migrate the link in and out until the callers are done.
      while (completed.load() < 4 * kOps) {
        moderator.register_aspect(a, AspectKind::of("shard-mig-link"), link);
        moderator.register_aspect(b, AspectKind::of("shard-mig-link"), link);
        moderator.bank().remove_aspect(a, AspectKind::of("shard-mig-link"));
        moderator.bank().remove_aspect(b, AspectKind::of("shard-mig-link"));
      }
    });
  }
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(completed.load(), 4 * kOps);
  EXPECT_EQ(link_entries.load(), link_posts.load())
      << "migration tore an entry/postaction pair";
  EXPECT_EQ(excl_a->active(), 0u);
  EXPECT_EQ(excl_b->active(), 0u);
  EXPECT_EQ(moderator.blocked_waiters(), 0u);

  // Compiled-chain invalidation: this thread's moderation cache holds a
  // COMPILED plan (pre-resolved hook thunks) for `a`. Once remove_aspect
  // has returned, no later admission on this thread may run the removed
  // aspect's hooks out of that stale compiled plan — the epoch check must
  // force a recompile.
  std::atomic<int> stale_executions{0};
  std::atomic<bool> retired{false};
  auto canary = std::make_shared<LambdaAspect>(
      "canary",
      [&](InvocationContext&) {
        if (retired.load()) stale_executions.fetch_add(1);
        return Decision::kResume;
      },
      [&](InvocationContext&) {
        if (retired.load()) stale_executions.fetch_add(1);
      },
      [&](InvocationContext&) {
        if (retired.load()) stale_executions.fetch_add(1);
      });
  canary->set_nonblocking(true);
  moderator.register_aspect(a, AspectKind::of("shard-mig-canary"), canary);
  {
    // Warm the cache so it pins the canary-bearing compiled chain.
    InvocationContext warm(a);
    ASSERT_EQ(moderator.preactivation(warm), Decision::kResume);
    moderator.postactivation(warm);
  }
  moderator.bank().remove_aspect(a, AspectKind::of("shard-mig-canary"));
  retired.store(true);
  for (int i = 0; i < 64; ++i) {
    InvocationContext ctx(a);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    moderator.postactivation(ctx);
  }
  EXPECT_EQ(stale_executions.load(), 0)
      << "a stale compiled chain executed a removed aspect's hooks";
}

}  // namespace
}  // namespace amf::core

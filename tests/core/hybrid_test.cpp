// Hybrid composition parity (DESIGN.md §16 interop, ROADMAP
// static-composition follow-on (b)).
//
// The contract under test: HybridProxy — a dynamic authentication shell
// published around the statically woven ticket sync core in one
// constructor call — is observationally identical to the all-dynamic
// wiring of the same two concerns: same verdicts, same error text, same
// assigned tickets, same component counters, G4 pairing clean in the
// shell, protocol traces valid in both layers. Plus the layering claims
// the hybrid adds: an outer veto never consults the core, and a caller
// blocked INSIDE the core is released by a peer call arriving through the
// shell.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "apps/ticket/static_ticket.hpp"
#include "apps/ticket/ticket_proxy.hpp"
#include "aspects/synchronization.hpp"
#include "core/hybrid.hpp"
#include "core/verify.hpp"

namespace {

using namespace amf;
using namespace amf::core;
using namespace amf::apps::ticket;
using enum Decision;

using HybridTicket =
    HybridProxy<TicketServer, StaticSyncAspect, StaticSyncAspect>;

// The same auth guard for both wirings: veto anonymous callers with the
// error shape AuthenticationAspect uses.
AspectPtr make_auth_aspect() {
  return std::make_shared<LambdaAspect>(
      "auth", [](InvocationContext& ctx) {
        if (!ctx.principal().authenticated()) {
          ctx.set_note("vetoed.by", "auth");
          ctx.set_abort_error(runtime::make_error(
              runtime::ErrorCode::kUnauthenticated,
              "anonymous caller refused"));
          return kAbort;
        }
        return kResume;
      });
}

runtime::Principal amy() {
  return runtime::Principal{"amy", {"agent"}, "token-amy"};
}

// The one-call wiring under test: dynamic auth bindings (wrapped in the
// conformance decorator) + statically woven producer/consumer guards.
std::unique_ptr<HybridTicket> make_hybrid_ticket(
    std::size_t capacity, std::shared_ptr<HookOrderGuard> auth,
    runtime::EventLog* outer_log = nullptr,
    runtime::EventLog* inner_log = nullptr) {
  HybridOptions options;
  if (outer_log != nullptr) options.outer.log = outer_log;
  if (inner_log != nullptr) options.inner.log = inner_log;
  options.bindings = {
      {open_method(), runtime::kinds::authentication(), auth},
      {assign_method(), runtime::kinds::authentication(), auth}};
  auto state = std::make_shared<aspects::BoundedResourceState>(capacity);
  return std::make_unique<HybridTicket>(
      std::move(options), TicketServer(capacity),
      StaticSyncAspect(
          aspects::BoundedResourceAspect(
              aspects::BoundedResourceAspect::Role::kProducer, state),
          open_method()),
      StaticSyncAspect(
          aspects::BoundedResourceAspect(
              aspects::BoundedResourceAspect::Role::kConsumer, state),
          assign_method()));
}

// The all-dynamic reference: make_ticket_proxy's bank wiring plus the same
// auth aspect registered outside synchronization (the §5.3 kind order).
std::shared_ptr<TicketProxy> make_dynamic_reference(
    std::size_t capacity, std::shared_ptr<HookOrderGuard> auth,
    runtime::EventLog* log = nullptr) {
  ModeratorOptions options;
  if (log != nullptr) options.log = log;
  auto proxy = make_ticket_proxy(capacity, options);
  proxy->moderator().bank().set_kind_order(
      {runtime::kinds::authentication(), runtime::kinds::synchronization()});
  proxy->moderator().register_aspect(
      open_method(), runtime::kinds::authentication(), auth);
  proxy->moderator().register_aspect(
      assign_method(), runtime::kinds::authentication(), auth);
  return proxy;
}

TEST(HybridProxyTest, ConstructorPublishesBindingsBeforeTraffic) {
  auto auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto hybrid = make_hybrid_ticket(2, auth);
  // The one-call claim: both cells are in the dynamic bank already.
  EXPECT_EQ(hybrid->moderator().bank().find(
                open_method(), runtime::kinds::authentication()),
            auth);
  EXPECT_EQ(hybrid->moderator().bank().find(
                assign_method(), runtime::kinds::authentication()),
            auth);
  // And the core is live behind it.
  EXPECT_EQ(hybrid->component().capacity(), 2u);
}

TEST(HybridProxyTest, OuterVetoNeverConsultsTheStaticCore) {
  auto hybrid_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto dyn_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto hybrid = make_hybrid_ticket(2, hybrid_auth);
  auto dyn = make_dynamic_reference(2, dyn_auth);

  auto rh = static_open_ticket(*hybrid, Ticket{1, "a", "u"});
  auto rd = open_ticket(*dyn, Ticket{1, "a", "u"});

  ASSERT_EQ(rh.status, InvocationStatus::kAborted);
  ASSERT_EQ(rd.status, rh.status);
  EXPECT_EQ(rh.error.code, runtime::ErrorCode::kUnauthenticated);
  EXPECT_EQ(rh.error.code, rd.error.code);
  EXPECT_EQ(rh.error.message, rd.error.message);

  // The refusal happened in the shell: the woven core never saw the call.
  EXPECT_EQ(hybrid->core().stats().admitted, 0u);
  EXPECT_EQ(hybrid->component().total_opened(), 0u);
  EXPECT_TRUE(hybrid_auth->violations().empty());
  EXPECT_TRUE(dyn_auth->violations().empty());
}

TEST(HybridProxyTest, AdmittedScriptMatchesAllDynamic) {
  runtime::EventLog hyb_outer_log, hyb_inner_log, dyn_log;
  auto hybrid_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto dyn_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto hybrid =
      make_hybrid_ticket(2, hybrid_auth, &hyb_outer_log, &hyb_inner_log);
  auto dyn = make_dynamic_reference(2, dyn_auth, &dyn_log);
  const auto user = amy();

  // Same script through both wirings: fill, drain, refill.
  const Ticket t1{1, "a", "u"}, t2{2, "b", "u"}, t3{3, "c", "u"};
  for (const Ticket& t : {t1, t2}) {
    auto rh = hybrid->call(open_method()).as(user).run(
        [&t](TicketServer& s) { s.open(t); });
    auto rd = open_ticket_as(*dyn, t, user);
    ASSERT_TRUE(rh.ok());
    ASSERT_EQ(rd.status, rh.status);
  }
  for (int i = 0; i < 2; ++i) {
    auto rh = hybrid->call(assign_method()).as(user).run(
        [](TicketServer& s) { return s.assign(); });
    auto rd = assign_ticket_as(*dyn, user);
    ASSERT_TRUE(rh.ok());
    ASSERT_TRUE(rd.ok());
    EXPECT_EQ(rh.value->id, rd.value->id);
  }
  auto rh3 = hybrid->call(open_method()).as(user).run(
      [&t3](TicketServer& s) { s.open(t3); });
  ASSERT_TRUE(rh3.ok());
  ASSERT_TRUE(open_ticket_as(*dyn, t3, user).ok());

  EXPECT_EQ(hybrid->component().total_opened(),
            dyn->component().total_opened());
  EXPECT_EQ(hybrid->component().total_assigned(),
            dyn->component().total_assigned());

  // Every admitted call passed both layers exactly once.
  EXPECT_EQ(hybrid->core().stats().admitted, 5u);
  EXPECT_EQ(hybrid->core().stats().completed, 5u);

  // G4 pairing in the shell, protocol traces valid in every layer.
  EXPECT_TRUE(hybrid_auth->violations().empty());
  EXPECT_TRUE(dyn_auth->violations().empty());
  EXPECT_TRUE(TraceValidator::validate(hyb_outer_log).empty());
  EXPECT_TRUE(TraceValidator::validate(hyb_inner_log).empty());
  EXPECT_TRUE(TraceValidator::validate(dyn_log).empty());
}

TEST(HybridProxyTest, DeadlineParityWhileBlockedInTheInnerCore) {
  auto hybrid_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto dyn_auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto hybrid = make_hybrid_ticket(2, hybrid_auth);
  auto dyn = make_dynamic_reference(2, dyn_auth);
  const auto user = amy();
  const auto wait = std::chrono::milliseconds(20);

  // Empty buffer: assign blocks — in the hybrid it parks inside the WOVEN
  // chain (the shell admitted it) — and the deadline must surface the same
  // structured timeout as the all-dynamic wiring.
  auto rh = hybrid->call(assign_method()).as(user).within(wait).run(
      [](TicketServer& s) { return s.assign(); });
  auto rd = dyn->call(assign_method()).as(user).within(wait).run(
      [](TicketServer& s) { return s.assign(); });

  ASSERT_EQ(rh.status, InvocationStatus::kTimedOut);
  ASSERT_EQ(rd.status, rh.status);
  EXPECT_EQ(rh.error.code, runtime::ErrorCode::kTimeout);
  EXPECT_EQ(rh.error.code, rd.error.code);
  EXPECT_EQ(rh.error.message, rd.error.message);
  EXPECT_EQ(hybrid->core().stats().timed_out, 1u);
  EXPECT_TRUE(hybrid_auth->violations().empty());
}

TEST(HybridProxyTest, PeerCallThroughTheShellReleasesTheInnerBlock) {
  auto auth = std::make_shared<HookOrderGuard>(make_auth_aspect());
  auto hybrid = make_hybrid_ticket(2, auth);
  const auto user = amy();

  // A consumer blocks inside the static core; a producer arriving through
  // the full hybrid stack (shell admission, then core admission) must wake
  // it — the cross-layer wakeup path.
  Ticket assigned;
  std::thread consumer([&] {
    auto r = hybrid->call(assign_method()).as(user).run(
        [](TicketServer& s) { return s.assign(); });
    ASSERT_TRUE(r.ok());
    assigned = *r.value;
  });
  // Don't produce until the consumer has really parked in the core (on one
  // CPU the main thread can otherwise run first and nothing ever blocks).
  while (hybrid->core().stats().block_events == 0) {
    std::this_thread::yield();
  }
  auto opened = hybrid->call(open_method()).as(user).run(
      [](TicketServer& s) { s.open(Ticket{7, "x", "u"}); });
  ASSERT_TRUE(opened.ok());
  consumer.join();

  EXPECT_EQ(assigned.id, 7u);
  EXPECT_GE(hybrid->core().stats().block_events, 1u);
  EXPECT_TRUE(auth->violations().empty());
}

}  // namespace

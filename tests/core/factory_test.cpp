#include "core/factory.hpp"

#include <gtest/gtest.h>

#include "core/moderator.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

AspectPtr named(std::string name) {
  return std::make_shared<LambdaAspect>(std::move(name));
}

TEST(RegistryAspectFactoryTest, ExactBindingWins) {
  RegistryAspectFactory factory;
  const auto m = MethodId::of("open");
  const auto k = AspectKind::of("sync");
  factory.bind_kind(k, [](MethodId, AspectKind) { return named("generic"); });
  factory.bind(m, k, [](MethodId, AspectKind) { return named("specific"); });
  EXPECT_EQ(factory.create(m, k)->name(), "specific");
  EXPECT_EQ(factory.create(MethodId::of("assign"), k)->name(), "generic");
}

TEST(RegistryAspectFactoryTest, UnknownCellReturnsNull) {
  RegistryAspectFactory factory;
  EXPECT_EQ(factory.create(MethodId::of("x"), AspectKind::of("y")), nullptr);
}

TEST(RegistryAspectFactoryTest, CreatorReceivesCell) {
  RegistryAspectFactory factory;
  const auto m = MethodId::of("open");
  const auto k = AspectKind::of("sync");
  factory.bind_kind(k, [](MethodId method, AspectKind kind) {
    return named(std::string(method.name()) + "/" + std::string(kind.name()));
  });
  EXPECT_EQ(factory.create(m, k)->name(), "open/sync");
}

TEST(ChainedAspectFactoryTest, PrimaryWinsFallbackFills) {
  // The §5.3 shape: extended factory knows AUTHENTICATE, parent knows SYNC.
  auto parent = std::make_shared<RegistryAspectFactory>();
  auto child = std::make_shared<RegistryAspectFactory>();
  const auto sync = AspectKind::of("c-sync");
  const auto auth = AspectKind::of("c-auth");
  parent->bind_kind(sync,
                    [](MethodId, AspectKind) { return named("sync"); });
  child->bind_kind(auth, [](MethodId, AspectKind) { return named("auth"); });

  ChainedAspectFactory extended(child, parent);
  const auto m = MethodId::of("open");
  EXPECT_EQ(extended.create(m, auth)->name(), "auth");
  EXPECT_EQ(extended.create(m, sync)->name(), "sync");
  EXPECT_EQ(extended.create(m, AspectKind::of("c-none")), nullptr);
}

TEST(ChainedAspectFactoryTest, ChildOverridesParent) {
  auto parent = std::make_shared<RegistryAspectFactory>();
  auto child = std::make_shared<RegistryAspectFactory>();
  const auto k = AspectKind::of("c2-sync");
  parent->bind_kind(k, [](MethodId, AspectKind) { return named("old"); });
  child->bind_kind(k, [](MethodId, AspectKind) { return named("new"); });
  ChainedAspectFactory extended(child, parent);
  EXPECT_EQ(extended.create(MethodId::of("m"), k)->name(), "new");
}

TEST(ChainedAspectFactoryTest, NullPartsTolerated) {
  ChainedAspectFactory empty(nullptr, nullptr);
  EXPECT_EQ(empty.create(MethodId::of("m"), AspectKind::of("k")), nullptr);
}

TEST(EquipFromFactoryTest, RegistersEveryAvailableCell) {
  // Reproduces Fig. 5: equip a moderator for two methods × one kind.
  AspectModerator moderator;
  RegistryAspectFactory factory;
  const auto open = MethodId::of("eq-open");
  const auto assign = MethodId::of("eq-assign");
  const auto sync = AspectKind::of("eq-sync");
  factory.bind_kind(sync, [](MethodId m, AspectKind) {
    return named(std::string(m.name()));
  });
  const MethodId methods[] = {open, assign};
  const AspectKind kinds[] = {sync};
  EXPECT_EQ(equip_from_factory(moderator, factory, methods, kinds), 2u);
  EXPECT_NE(moderator.bank().find(open, sync), nullptr);
  EXPECT_NE(moderator.bank().find(assign, sync), nullptr);
}

TEST(EquipFromFactoryTest, SkipsCellsTheFactoryDeclines) {
  AspectModerator moderator;
  RegistryAspectFactory factory;
  const auto open = MethodId::of("eq2-open");
  const auto sync = AspectKind::of("eq2-sync");
  const auto auth = AspectKind::of("eq2-auth");
  factory.bind(open, sync, [](MethodId, AspectKind) { return named("s"); });
  const MethodId methods[] = {open};
  const AspectKind kinds[] = {sync, auth};
  EXPECT_EQ(equip_from_factory(moderator, factory, methods, kinds), 1u);
  EXPECT_EQ(moderator.bank().find(open, auth), nullptr);
}

}  // namespace
}  // namespace amf::core

// Asynchronous moderation (DESIGN.md §18): future-returning admission.
//
// The properties under test:
//   * an immediate verdict settles the future inline (no persona needed);
//   * a kBlock verdict parks the call — no thread is held — and a later
//     completion's postactivation hands the call back to the initiating
//     persona, whose progress() re-runs the normal admission;
//   * refusal semantics (deadline, stop token, shutdown, watchdog
//     eviction) match the synchronous path, structured error included;
//   * G4 exactly-once entry/postaction pairing holds on the async path.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::ErrorCode;
using runtime::MethodId;

struct Service {
  int calls = 0;
  int work(int x) {
    ++calls;
    return x * 2;
  }
};

struct WorkBody {
  int x = 1;
  int operator()(Service& s) const { return s.work(x); }
};

using Proxy = ComponentProxy<Service>;
using Call = Proxy::AsyncCall<WorkBody>;

// Gate guard shared by most tests: blocks while closed, counts
// entry/postaction so pairing is checkable. All hooks run under the
// moderator's method locks, so plain fields suffice.
struct Gate {
  bool open = false;
  int entered = 0;
  int posted = 0;

  std::shared_ptr<LambdaAspect> aspect() {
    return std::make_shared<LambdaAspect>(
        "gate",
        [this](InvocationContext&) {
          return open ? Decision::kResume : Decision::kBlock;
        },
        [this](InvocationContext&) { ++entered; },
        [this](InvocationContext&) { ++posted; });
  }
};

TEST(ModeratorAsyncTest, ImmediateResumeSettlesInline) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-inline");
  proxy.moderator().register_aspect(m, AspectKind::of("a1"),
                                    std::make_shared<LambdaAspect>("noop"));
  Call call(proxy, m, WorkBody{21});
  auto future = call.future();
  call.start();
  ASSERT_TRUE(future.ready()) << "an unblocked call settles inside start()";
  ASSERT_TRUE(future.value().ok());
  EXPECT_EQ(*future.value().value, 42);
  EXPECT_LT(future.value().wait_time, std::chrono::milliseconds(5))
      << "an inline admission never blocked";
  EXPECT_EQ(proxy.component().calls, 1);
  EXPECT_EQ(proxy.moderator().stats(m).admitted, 1u);
  EXPECT_EQ(proxy.moderator().stats(m).completed, 1u);
}

TEST(ModeratorAsyncTest, ImmediateAbortNeverTouchesComponent) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-veto");
  proxy.moderator().register_aspect(
      m, AspectKind::of("a2"),
      std::make_shared<LambdaAspect>(
          "veto", [](InvocationContext&) { return Decision::kAbort; }));
  Call call(proxy, m, WorkBody{});
  auto future = call.future();
  call.start();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value().status, InvocationStatus::kAborted);
  EXPECT_EQ(proxy.component().calls, 0);
}

TEST(ModeratorAsyncTest, ParkedCallIsAdmittedAfterCompletionSignal) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-park");
  const auto opener = MethodId::of("async-park-opener");
  Gate gate;
  proxy.moderator().register_aspect(m, AspectKind::of("a3"), gate.aspect());
  proxy.moderator().register_aspect(
      opener, AspectKind::of("a3"),
      std::make_shared<LambdaAspect>(
          "open", nullptr, nullptr,
          [&gate](InvocationContext&) { gate.open = true; }));

  Call call(proxy, m, WorkBody{5});
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready()) << "closed gate must park, not settle";
  EXPECT_EQ(proxy.moderator().async_parked(), 1);
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 1u);
  EXPECT_EQ(proxy.component().calls, 0) << "parked call must not run";

  // A completing writer's postactivation opens the gate and transfers the
  // parked call to this thread's persona...
  ASSERT_TRUE(proxy.invoke(opener, [](Service&) {}).ok());
  EXPECT_EQ(proxy.moderator().async_parked(), 0);
  EXPECT_FALSE(future.ready()) << "retry waits for the persona drain";

  // ...and one progress() drain re-admits and completes it.
  EXPECT_GE(concurrency::progress(), 1u);
  ASSERT_TRUE(future.ready());
  ASSERT_TRUE(future.value().ok());
  EXPECT_EQ(*future.value().value, 10);
  EXPECT_EQ(gate.entered, 1);
  EXPECT_EQ(gate.posted, 1) << "G4 pairing on the async path";
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
  EXPECT_EQ(proxy.moderator().stats(m).block_events, 1u);
}

TEST(ModeratorAsyncTest, SlabStormParksManyAndDrainsWithOneOpen) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-storm");
  const auto opener = MethodId::of("async-storm-opener");
  Gate gate;
  proxy.moderator().register_aspect(m, AspectKind::of("a4"), gate.aspect());
  proxy.moderator().register_aspect(
      opener, AspectKind::of("a4"),
      std::make_shared<LambdaAspect>(
          "open", nullptr, nullptr,
          [&gate](InvocationContext&) { gate.open = true; }));

  constexpr int kCalls = 100;
  std::deque<Call> slab;  // deque: frames never relocate
  std::vector<concurrency::Future<Call::Result>> futures;
  for (int i = 0; i < kCalls; ++i) {
    auto& call = slab.emplace_back(proxy, m, WorkBody{i});
    futures.push_back(call.future());
    call.start();
  }
  EXPECT_EQ(proxy.moderator().async_parked(), kCalls);

  ASSERT_TRUE(proxy.invoke(opener, [](Service&) {}).ok());
  concurrency::progress_until([&] {
    for (const auto& f : futures) {
      if (!f.ready()) return false;
    }
    return true;
  });
  for (int i = 0; i < kCalls; ++i) {
    ASSERT_TRUE(futures[static_cast<std::size_t>(i)].value().ok());
    EXPECT_EQ(*futures[static_cast<std::size_t>(i)].value().value, i * 2);
  }
  EXPECT_EQ(proxy.component().calls, kCalls);
  EXPECT_EQ(gate.entered, kCalls);
  EXPECT_EQ(gate.posted, kCalls);
  EXPECT_EQ(proxy.moderator().async_parked(), 0);
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
}

TEST(ModeratorAsyncTest, DeadlineExpiredWhileParkedYieldsTimeout) {
  runtime::ManualClock clock;
  ModeratorOptions options;
  options.clock = &clock;
  Proxy proxy{Service{}, options};
  const auto m = MethodId::of("async-deadline");
  const auto ping = MethodId::of("async-deadline-ping");
  Gate gate;  // never opened
  proxy.moderator().register_aspect(m, AspectKind::of("a5"), gate.aspect());
  proxy.moderator().register_aspect(
      ping, AspectKind::of("a5"), std::make_shared<LambdaAspect>("noop"));

  Call call(proxy, m, WorkBody{});
  call.context().set_deadline(clock.now() + std::chrono::milliseconds(100));
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready());

  // The deadline passes while parked; an unrelated completion supplies the
  // wakeup and the retry turns it into a structured timeout.
  clock.advance(std::chrono::milliseconds(200));
  ASSERT_TRUE(proxy.invoke(ping, [](Service&) {}).ok());
  concurrency::progress();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value().status, InvocationStatus::kTimedOut);
  EXPECT_EQ(future.value().error.code, ErrorCode::kTimeout);
  EXPECT_EQ(proxy.component().calls, 0);
  EXPECT_EQ(proxy.moderator().stats(m).timed_out, 1u);
  EXPECT_EQ(gate.entered, 0);
  EXPECT_EQ(gate.posted, 0);
}

TEST(ModeratorAsyncTest, StopTokenCancelsParkedCall) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-stop");
  const auto ping = MethodId::of("async-stop-ping");
  Gate gate;  // never opened
  proxy.moderator().register_aspect(m, AspectKind::of("a6"), gate.aspect());
  proxy.moderator().register_aspect(
      ping, AspectKind::of("a6"), std::make_shared<LambdaAspect>("noop"));

  std::stop_source source;
  Call call(proxy, m, WorkBody{});
  call.context().set_stop(source.get_token());
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready());

  source.request_stop();
  ASSERT_TRUE(proxy.invoke(ping, [](Service&) {}).ok());
  concurrency::progress();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value().status, InvocationStatus::kCancelled);
  EXPECT_EQ(future.value().error.code, ErrorCode::kCancelled);
  EXPECT_EQ(proxy.moderator().stats(m).cancelled, 1u);
}

TEST(ModeratorAsyncTest, ShutdownSettlesParkedCallsAsCancelled) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-shutdown");
  Gate gate;  // never opened
  proxy.moderator().register_aspect(m, AspectKind::of("a7"), gate.aspect());

  Call call(proxy, m, WorkBody{});
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready());

  proxy.moderator().shutdown();
  concurrency::progress();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value().status, InvocationStatus::kCancelled);

  // Submissions after shutdown settle inline.
  Call late(proxy, m, WorkBody{});
  auto late_future = late.future();
  late.start();
  ASSERT_TRUE(late_future.ready());
  EXPECT_EQ(late_future.value().status, InvocationStatus::kCancelled);
}

TEST(ModeratorAsyncTest, WatchdogEvictsParkedCall) {
  runtime::ManualClock clock;
  runtime::EventLog log(clock);
  WatchdogOptions wd;
  wd.stall_after = std::chrono::milliseconds(100);
  wd.abort_stalled = true;
  ModeratorOptions options;
  options.clock = &clock;
  options.log = &log;
  options.watchdog = wd;
  Proxy proxy{Service{}, options};
  const auto m = MethodId::of("async-evict");
  Gate gate;  // never opened
  proxy.moderator().register_aspect(m, AspectKind::of("a8"), gate.aspect());

  Call call(proxy, m, WorkBody{});
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready());
  EXPECT_EQ(proxy.moderator().async_parked(), 1);

  clock.advance(std::chrono::milliseconds(150));
  EXPECT_EQ(proxy.moderator().scan_stalls(), 1u);
  EXPECT_EQ(proxy.moderator().async_parked(), 0)
      << "eviction transfers the node out of the parked list";
  concurrency::progress();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.value().status, InvocationStatus::kTimedOut);
  EXPECT_EQ(future.value().error.code, ErrorCode::kDeadlineExceeded);
  EXPECT_NE(future.value().error.message.find("watchdog"), std::string::npos);
  EXPECT_EQ(proxy.moderator().blocked_waiters(), 0u);
  const auto violations = TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front().description);
}

TEST(ModeratorAsyncTest, BindTargetsAnExplicitPersona) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-bind");
  const auto opener = MethodId::of("async-bind-opener");
  Gate gate;
  proxy.moderator().register_aspect(m, AspectKind::of("a9"), gate.aspect());
  proxy.moderator().register_aspect(
      opener, AspectKind::of("a9"),
      std::make_shared<LambdaAspect>(
          "open", nullptr, nullptr,
          [&gate](InvocationContext&) { gate.open = true; }));

  concurrency::Persona persona;
  Call call(proxy, m, WorkBody{3});
  call.bind(&persona);
  auto future = call.future();
  call.start();
  EXPECT_FALSE(future.ready());

  ASSERT_TRUE(proxy.invoke(opener, [](Service&) {}).ok());
  EXPECT_GE(concurrency::progress(), 0u);
  EXPECT_FALSE(future.ready())
      << "the submitting thread's persona must not fire a bound call";
  EXPECT_EQ(persona.progress(), 1u);
  ASSERT_TRUE(future.ready());
  EXPECT_TRUE(future.value().ok());
  EXPECT_EQ(*future.value().value, 6);
}

TEST(ModeratorAsyncTest, InvokeAsyncConvenienceWrapper) {
  Proxy proxy{Service{}};
  const auto m = MethodId::of("async-wrap");
  proxy.moderator().register_aspect(m, AspectKind::of("a10"),
                                    std::make_shared<LambdaAspect>("noop"));
  auto call = proxy.invoke_async(m, [](Service& s) { return s.work(8); });
  auto future = call->future();
  call->start();
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(*future.value().value, 16);
}

TEST(ModeratorAsyncTest, SettleCallbackFitsInlineStorage) {
  // The no-heap-per-park property: the settle continuation the proxy arms
  // captures one frame pointer and must live in ParkedCall's inline buffer
  // (a spill would mean one heap allocation per parked call).
  AspectModerator::ParkedCall park;
  void* frame = &park;
  park.settle.emplace([frame](Decision) { (void)frame; });
  EXPECT_TRUE(park.settle.inline_stored());
  park.settle.reset();
}

}  // namespace
}  // namespace amf::core

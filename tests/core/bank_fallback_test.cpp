// Degraded-mode composition tests (DESIGN.md §17): declared fallback chains
// swap in epoch-consistently when a primary member goes impaired —
// quarantined, or bound (via Aspect::resource) to a resource the
// HealthRegistry reports fenced — and swap back automatically on recovery.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bank.hpp"
#include "core/moderator.hpp"
#include "core/verify.hpp"
#include "runtime/event_log.hpp"
#include "runtime/health.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::HealthRegistry;
using runtime::HealthState;
using runtime::MethodId;

AspectPtr named(std::string name) {
  return std::make_shared<LambdaAspect>(std::move(name));
}

AspectPtr with_resource(std::string name, std::string resource) {
  auto a = std::make_shared<LambdaAspect>(std::move(name));
  a->set_resource(std::move(resource));
  return a;
}

std::vector<std::string> chain_names(const AspectBank& bank, MethodId m) {
  std::vector<std::string> out;
  for (const auto& e : *bank.chain(m)) out.emplace_back(e.aspect->name());
  return out;
}

TEST(BankFallbackTest, FenceSwapsToDeclaredFallbackAndRecoveryRestores) {
  HealthRegistry health;
  AspectBank bank;
  bank.set_health(&health);
  const auto m = MethodId::of("fb-swap");
  bank.register_aspect(m, AspectKind::of("fb-sync"),
                       with_resource("primary", "db"));
  bank.set_fallback(m, {{AspectKind::of("fb-shed"), named("shed")}});
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.fallback_active(m));

  health.report_fenced("db", "io fault");
  health.pump();  // delivers the transition -> bank republishes
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"shed"}));
  EXPECT_TRUE(bank.fallback_active(m));

  health.report_healthy("db", "reopened");
  health.pump();
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.fallback_active(m));
}

TEST(BankFallbackTest, DegradedDoesNotTripFallback) {
  HealthRegistry health;
  AspectBank bank;
  bank.set_health(&health);
  const auto m = MethodId::of("fb-degraded");
  bank.register_aspect(m, AspectKind::of("fb-sync"),
                       with_resource("primary", "svc"));
  bank.set_fallback(m, {{AspectKind::of("fb-shed"), named("shed")}});

  health.report_degraded("svc", "breaker open");
  health.pump();
  // Degraded resources keep their primary composition: the impaired
  // predicate only trips on fences (the breaker already sheds inside).
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.fallback_active(m));
}

TEST(BankFallbackTest, NoFallbackDeclaredKeepsPrimaryUnderFence) {
  HealthRegistry health;
  AspectBank bank;
  bank.set_health(&health);
  const auto m = MethodId::of("fb-none");
  bank.register_aspect(m, AspectKind::of("fb-sync"),
                       with_resource("primary", "dev"));
  health.report_fenced("dev");
  health.pump();
  // Without a declaration there is nothing to swap to; the primary chain
  // stays (its own guards are expected to shed, e.g. persist's kUnavailable).
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.fallback_active(m));
}

TEST(BankFallbackTest, QuarantineOfPrimaryMemberTripsFallback) {
  AspectBank bank;  // no health registry: quarantine alone must trip
  const auto m = MethodId::of("fb-quar");
  auto primary = named("primary");
  bank.register_aspect(m, AspectKind::of("fb-sync"), primary);
  bank.set_fallback(m, {{AspectKind::of("fb-shed"), named("shed")}});

  ASSERT_TRUE(bank.quarantine(primary.get()));
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"shed"}));
  EXPECT_TRUE(bank.fallback_active(m));

  ASSERT_TRUE(bank.unquarantine(primary.get()));
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.fallback_active(m));
}

TEST(BankFallbackTest, QuarantinedFallbackMemberIsExcludedIndividually) {
  AspectBank bank;
  const auto m = MethodId::of("fb-quar2");
  auto primary = named("primary");
  auto shed_a = named("shed-a");
  auto shed_b = named("shed-b");
  bank.register_aspect(m, AspectKind::of("fb-sync"), primary);
  bank.set_fallback(m, {{AspectKind::of("fb-shed-a"), shed_a},
                        {AspectKind::of("fb-shed-b"), shed_b}});

  ASSERT_TRUE(bank.quarantine(primary.get()));
  ASSERT_TRUE(bank.quarantine(shed_a.get()));
  // No second-level fallback: the declared chain publishes minus its own
  // quarantined members.
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"shed-b"}));
  EXPECT_TRUE(bank.fallback_active(m));
}

TEST(BankFallbackTest, ClearFallbackRestoresPrimaryDerivation) {
  HealthRegistry health;
  AspectBank bank;
  bank.set_health(&health);
  const auto m = MethodId::of("fb-clear");
  bank.register_aspect(m, AspectKind::of("fb-sync"),
                       with_resource("primary", "res"));
  bank.set_fallback(m, {{AspectKind::of("fb-shed"), named("shed")}});
  health.report_fenced("res");
  health.pump();
  ASSERT_TRUE(bank.fallback_active(m));

  EXPECT_TRUE(bank.clear_fallback(m));
  EXPECT_FALSE(bank.fallback_active(m));
  EXPECT_EQ(chain_names(bank, m), (std::vector<std::string>{"primary"}));
  EXPECT_FALSE(bank.clear_fallback(m));  // second clear: nothing declared
}

TEST(BankFallbackTest, DescribeListsActiveFallbacks) {
  HealthRegistry health;
  AspectBank bank;
  bank.set_health(&health);
  const auto m = MethodId::of("fb-desc");
  bank.register_aspect(m, AspectKind::of("fb-sync"),
                       with_resource("primary", "db2"));
  bank.set_fallback(m, {{AspectKind::of("fb-shed"), named("shed")}});
  health.report_fenced("db2");
  health.pump();
  EXPECT_NE(bank.describe().find("fallback-active"), std::string::npos);
  EXPECT_NE(bank.describe().find("fb-desc"), std::string::npos);
}

// Moderator integration: the admitted invocation carries the fallback note,
// and the swap itself is epoch-consistent under concurrent traffic.

TEST(BankFallbackTest, ModeratorStampsFallbackActiveNote) {
  HealthRegistry health;
  ModeratorOptions options;
  options.health = &health;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fb-note");
  moderator.bank().register_aspect(m, AspectKind::of("fb-sync"),
                                   with_resource("primary", "dev3"));
  moderator.bank().set_fallback(
      m, {{AspectKind::of("fb-shed"), named("shed")}});

  {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    EXPECT_FALSE(ctx.note_view(kFallbackActiveNote).has_value());
    moderator.postactivation(ctx);
  }

  health.report_fenced("dev3", "flap");
  health.pump();
  {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    ASSERT_TRUE(ctx.note_view(kFallbackActiveNote).has_value());
    EXPECT_EQ(*ctx.note_view(kFallbackActiveNote), "1");
    moderator.postactivation(ctx);
  }

  health.report_healthy("dev3");
  health.pump();
  {
    InvocationContext ctx(m);
    ASSERT_EQ(moderator.preactivation(ctx), Decision::kResume);
    EXPECT_FALSE(ctx.note_view(kFallbackActiveNote).has_value());
    moderator.postactivation(ctx);
  }
}

TEST(BankFallbackTest, SwapIsEpochConsistentUnderHammer) {
  // Each chain is two marker aspects: the first stamps which chain it
  // belongs to, the second checks it saw its OWN chain's stamp. A caller
  // observing a half-swapped chain (primary head + fallback tail or vice
  // versa) would record a mix. The recomposition barrier makes that
  // impossible; this hammers it while health flaps drive swaps.
  constexpr std::string_view kMarker = "fb.chain";
  HealthRegistry health;
  runtime::EventLog log;
  ModeratorOptions options;
  options.health = &health;
  options.log = &log;
  AspectModerator moderator(options);
  const auto m = MethodId::of("fb-hammer");

  std::atomic<std::uint64_t> mixes{0};
  auto head = [&](std::string name, std::string stamp) {
    auto a = std::make_shared<LambdaAspect>(
        std::move(name), LambdaAspect::GuardFn{},
        [stamp, kMarker](InvocationContext& ctx) {
          ctx.set_note(kMarker, stamp);
        });
    return a;
  };
  auto tail = [&](std::string name, std::string expect) {
    auto a = std::make_shared<LambdaAspect>(
        std::move(name), LambdaAspect::GuardFn{},
        [expect, kMarker, &mixes](InvocationContext& ctx) {
          const auto seen = ctx.note_view(kMarker);
          if (!seen.has_value() || *seen != expect) {
            mixes.fetch_add(1, std::memory_order_relaxed);
          }
        });
    return a;
  };
  auto primary_head = head("p-head", "primary");
  primary_head->set_resource("flappy");
  moderator.bank().register_aspect(m, AspectKind::of("fb-h1"), primary_head);
  moderator.bank().register_aspect(m, AspectKind::of("fb-h2"),
                                   tail("p-tail", "primary"));
  moderator.bank().set_fallback(
      m, {{AspectKind::of("fb-f1"), head("f-head", "fallback")},
          {AspectKind::of("fb-f2"), tail("f-tail", "fallback")}});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> calls{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        InvocationContext ctx(m);
        if (moderator.preactivation(ctx) == Decision::kResume) {
          moderator.postactivation(ctx);
          calls.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  bool fenced = false;
  while (std::chrono::steady_clock::now() < until) {
    if (fenced) {
      health.report_healthy("flappy");
    } else {
      health.report_fenced("flappy", "storm");
    }
    fenced = !fenced;
    health.pump();  // runs the republish + barrier on this thread
  }
  stop.store(true);
  for (auto& w : workers) w.join();

  EXPECT_GT(calls.load(), 0u);
  EXPECT_EQ(mixes.load(), 0u) << "caller observed a half-swapped chain";
  const auto violations = TraceValidator::validate(log);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " protocol violations; first: "
      << violations.front().description;
}

}  // namespace
}  // namespace amf::core

// ComponentProxy invariant checking (design-by-contract over the guarded
// component) and the moderator's operational report.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "aspects/synchronization.hpp"
#include "core/framework.hpp"

namespace amf::core {
namespace {

using runtime::AspectKind;
using runtime::MethodId;

struct Vault {
  long balance = 0;
  void deposit(long v) { balance += v; }
  void withdraw(long v) { balance -= v; }  // can go negative: the bug
};

TEST(InvariantTest, PassingInvariantLeavesCompleted) {
  ComponentProxy<Vault> proxy{Vault{}};
  proxy.set_invariant([](const Vault& v) { return v.balance >= 0; });
  auto r = proxy.invoke(MethodId::of("dep"),
                        [](Vault& v) { v.deposit(10); });
  EXPECT_TRUE(r.ok());
}

TEST(InvariantTest, ViolationDowngradesToFailed) {
  ComponentProxy<Vault> proxy{Vault{}};
  proxy.set_invariant([](const Vault& v) { return v.balance >= 0; });
  auto r = proxy.invoke(MethodId::of("wd"),
                        [](Vault& v) { v.withdraw(5); });
  EXPECT_EQ(r.status, InvocationStatus::kFailed);
  EXPECT_NE(r.error.message.find("invariant"), std::string::npos);
}

TEST(InvariantTest, ViolationDropsReturnValue) {
  ComponentProxy<Vault> proxy{Vault{}};
  proxy.set_invariant([](const Vault& v) { return v.balance >= 0; });
  auto r = proxy.invoke(MethodId::of("wd"), [](Vault& v) {
    v.withdraw(5);
    return v.balance;
  });
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.value.has_value());
}

TEST(InvariantTest, PostactionsSeeBodyFailedFlag) {
  ComponentProxy<Vault> proxy{Vault{}};
  proxy.set_invariant([](const Vault& v) { return v.balance >= 0; });
  auto saw_failure = std::make_shared<bool>(false);
  const auto m = MethodId::of("wd-flag");
  proxy.moderator().register_aspect(
      m, AspectKind::of("inv"),
      std::make_shared<LambdaAspect>(
          "watch", nullptr, nullptr,
          [saw_failure](InvocationContext& ctx) {
            *saw_failure = !ctx.body_succeeded();
          }));
  (void)proxy.invoke(m, [](Vault& v) { v.withdraw(1); });
  EXPECT_TRUE(*saw_failure);
}

TEST(InvariantTest, CheckedUnderExclusivityWithConcurrentCallers) {
  // With a mutex aspect, the invariant check happens while the caller
  // still owns the critical section, so it observes a consistent state.
  ComponentProxy<Vault> proxy{Vault{}};
  proxy.set_invariant([](const Vault& v) { return v.balance >= 0; });
  const auto m = MethodId::of("inv-conc");
  proxy.moderator().register_aspect(
      m, runtime::kinds::synchronization(),
      std::make_shared<aspects::MutualExclusionAspect>());
  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 500; ++i) {
          // deposit-then-withdraw keeps the invariant if (and only if)
          // calls are exclusive.
          auto r = proxy.invoke(m, [](Vault& v) {
            v.deposit(1);
            v.withdraw(1);
          });
          if (!r.ok()) failures.fetch_add(1);
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(proxy.component().balance, 0);
}

TEST(ReportTest, ModeratorReportShowsBankAndStats) {
  ComponentProxy<Vault> proxy{Vault{}};
  const auto m = MethodId::of("rep-dep");
  proxy.moderator().register_aspect(
      m, runtime::kinds::synchronization(),
      std::make_shared<aspects::MutualExclusionAspect>());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(proxy.invoke(m, [](Vault& v) { v.deposit(1); }).ok());
  }
  const auto report = proxy.moderator().report();
  EXPECT_NE(report.find("rep-dep:"), std::string::npos);
  EXPECT_NE(report.find("admitted=3"), std::string::npos);
  EXPECT_NE(report.find("completed=3"), std::string::npos);
  EXPECT_NE(report.find("[sync/mutex]"), std::string::npos);
}

}  // namespace
}  // namespace amf::core

#include "concurrency/wait_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace amf::concurrency {
namespace {

TEST(WaitQueueTest, WaitReturnsImmediatelyWhenPredicateTrue) {
  WaitQueue q;
  q.wait([] { return true; });  // must not block
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(WaitQueueTest, UpdateAndNotifyWakesWaiter) {
  WaitQueue q;
  std::atomic<bool> flag{false};
  std::jthread waiter([&] { q.wait([&] { return flag.load(); }); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.waiters(), 1u);
  q.update_and_notify([&] { flag.store(true); });
  waiter.join();
  EXPECT_EQ(q.waiters(), 0u);
}

TEST(WaitQueueTest, WaitUntilTimesOut) {
  WaitQueue q;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  const auto result = q.wait_until(deadline, [] { return false; });
  EXPECT_EQ(result, WaitResult::kTimedOut);
  EXPECT_EQ(q.timeouts(), 1u);
}

TEST(WaitQueueTest, WaitUntilSatisfiedBeforeDeadline) {
  WaitQueue q;
  std::atomic<bool> flag{false};
  std::jthread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.update_and_notify([&] { flag.store(true); });
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  EXPECT_EQ(q.wait_until(deadline, [&] { return flag.load(); }),
            WaitResult::kSatisfied);
}

TEST(WaitQueueTest, WithLockReturnsValue) {
  WaitQueue q;
  int shared = 41;
  const int seen = q.with_lock([&] { return shared + 1; });
  EXPECT_EQ(seen, 42);
}

TEST(WaitQueueTest, ManyWaitersAllReleased) {
  WaitQueue q;
  std::atomic<bool> open{false};
  std::atomic<int> released{0};
  {
    std::vector<std::jthread> threads;
    for (int i = 0; i < 8; ++i) {
      threads.emplace_back([&] {
        q.wait([&] { return open.load(); });
        released.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.update_and_notify([&] { open.store(true); });
  }
  EXPECT_EQ(released.load(), 8);
  EXPECT_GE(q.wakeups(), 8u);
}

}  // namespace
}  // namespace amf::concurrency

// Tests for the intrusive MPSC queue backing batch moderation
// (DESIGN.md §14): FIFO hand-back order, the was-empty leader-election
// bit, node re-use after release, and a multi-producer hammer that checks
// exactly-once delivery and per-producer ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrency/intru_queue.hpp"

namespace amf::concurrency {
namespace {

struct Node {
  Node* next = nullptr;
  int producer = 0;
  int seq = 0;
};

TEST(IntruQueueTest, PushReportsTransitionFromEmpty) {
  IntruQueue<Node> q;
  Node a, b;
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.push(&a)) << "first push must report the empty->non-empty edge";
  EXPECT_FALSE(q.push(&b));
  EXPECT_FALSE(q.empty());
}

TEST(IntruQueueTest, TakeAllReturnsPushOrder) {
  IntruQueue<Node> q;
  std::vector<Node> nodes(16);
  for (int i = 0; i < 16; ++i) {
    nodes[static_cast<std::size_t>(i)].seq = i;
    q.push(&nodes[static_cast<std::size_t>(i)]);
  }
  int expect = 0;
  for (Node* n = q.take_all(); n != nullptr; n = n->next) {
    EXPECT_EQ(n->seq, expect++) << "take_all must hand nodes back FIFO";
  }
  EXPECT_EQ(expect, 16);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.take_all(), nullptr);
}

TEST(IntruQueueTest, NodesAreReusableAfterRelease) {
  IntruQueue<Node> q;
  Node n;
  for (int round = 0; round < 3; ++round) {
    n.seq = round;
    EXPECT_TRUE(q.push(&n));
    Node* got = q.take_all();
    ASSERT_EQ(got, &n);
    EXPECT_EQ(got->next, nullptr);
    EXPECT_EQ(got->seq, round);
  }
}

TEST(IntruQueueTest, MpscHammerDeliversExactlyOnceInProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2'000;
  IntruQueue<Node> q;
  // Nodes are caller-owned: each producer pushes out of its own slab, like
  // batch requests living in their callers' stack frames.
  std::vector<std::vector<Node>> slabs(kProducers,
                                       std::vector<Node>(kPerProducer));
  std::atomic<int> received{0};
  std::vector<int> last_seq(kProducers, -1);
  std::atomic<int> order_violations{0};

  std::thread consumer([&] {
    // Single consumer, as guaranteed by the moderator's combiner token.
    while (received.load(std::memory_order_relaxed) <
           kProducers * kPerProducer) {
      for (Node* n = q.take_all(); n != nullptr;) {
        Node* next = n->next;
        if (n->seq != last_seq[static_cast<std::size_t>(n->producer)] + 1) {
          order_violations.fetch_add(1, std::memory_order_relaxed);
        }
        last_seq[static_cast<std::size_t>(n->producer)] = n->seq;
        received.fetch_add(1, std::memory_order_relaxed);
        n = next;
      }
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          Node& n = slabs[static_cast<std::size_t>(p)]
                         [static_cast<std::size_t>(i)];
          n.producer = p;
          n.seq = i;
          q.push(&n);
        }
      });
    }
  }
  consumer.join();
  EXPECT_EQ(received.load(), kProducers * kPerProducer);
  EXPECT_EQ(order_violations.load(), 0)
      << "a producer's nodes came back out of push order";
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seq[static_cast<std::size_t>(p)], kPerProducer - 1);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace amf::concurrency

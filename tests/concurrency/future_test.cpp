// Unit tests for the async-moderation concurrency primitives
// (DESIGN.md §18): InlineCallback storage, Completion persona hops,
// Promise/Future bits protocol, and the Persona progress engine.
#include "concurrency/future.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/completion.hpp"
#include "concurrency/progress.hpp"

namespace amf::concurrency {
namespace {

// --- InlineCallback --------------------------------------------------------

TEST(InlineCallbackTest, SmallCallableStaysInline) {
  InlineCallback<kCompletionInline, int> cb;
  int seen = 0;
  cb.emplace([&seen](int v) { seen = v; });
  EXPECT_TRUE(cb.armed());
  EXPECT_TRUE(cb.inline_stored()) << "a one-pointer capture must fit inline";
  cb.fire(7);
  EXPECT_EQ(seen, 7);
  EXPECT_FALSE(cb.armed()) << "fire() disarms";
}

TEST(InlineCallbackTest, OversizedCallableSpillsToHeapAndStillFires) {
  InlineCallback<kCompletionInline> cb;
  std::array<char, 2 * kCompletionInline> big{};
  big[0] = 42;
  bool fired = false;
  cb.emplace([big, &fired] { fired = (big[0] == 42); });
  EXPECT_TRUE(cb.armed());
  EXPECT_FALSE(cb.inline_stored());
  cb.fire();
  EXPECT_TRUE(fired);
}

TEST(InlineCallbackTest, ResetDestroysWithoutInvoking) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  InlineCallback<kCompletionInline> cb;
  bool fired = false;
  cb.emplace([token, &fired] { fired = true; });
  token.reset();
  EXPECT_FALSE(watch.expired()) << "callable owns the capture";
  cb.reset();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(watch.expired()) << "reset() must destroy the capture";
  EXPECT_FALSE(cb.armed());
}

TEST(InlineCallbackTest, CallableMayReArmTheSlotFromInsideFire) {
  InlineCallback<kCompletionInline> cb;
  int fires = 0;
  cb.emplace([&] {
    ++fires;
    cb.emplace([&] { ++fires; });
  });
  cb.fire();
  EXPECT_TRUE(cb.armed()) << "re-arm from inside fire() must stick";
  cb.fire();
  EXPECT_EQ(fires, 2);
}

// --- Completion ------------------------------------------------------------

TEST(CompletionTest, UnboundTriggerRunsInline) {
  Completion<int> c;
  int seen = 0;
  c.arm([&seen](int v) { seen = v; });
  c.trigger(5);
  EXPECT_EQ(seen, 5);
}

TEST(CompletionTest, BoundTriggerDefersToPersonaDrain) {
  Persona persona;
  Completion<std::string> c;
  std::string seen;
  c.arm([&seen](std::string v) { seen = std::move(v); });
  c.bind(&persona);
  c.trigger("hello");
  EXPECT_TRUE(seen.empty()) << "bound trigger must not run inline";
  EXPECT_EQ(persona.progress(), 1u);
  EXPECT_EQ(seen, "hello");
}

// --- Promise / Future ------------------------------------------------------

TEST(FutureTest, FulfillThenThenRunsContinuationInline) {
  FutureState<int> state;
  Promise<int> promise(state);
  Future<int> future = promise.future();
  EXPECT_TRUE(future.valid());
  EXPECT_FALSE(future.ready());

  promise.fulfill(11);
  EXPECT_TRUE(future.ready());
  EXPECT_EQ(future.value(), 11);

  // Already-ready fast path: the continuation fires during then(), on this
  // thread, before then() returns.
  int seen = 0;
  future.then([&seen](int& v) { seen = v; });
  EXPECT_EQ(seen, 11);
}

TEST(FutureTest, ThenBeforeFulfillRunsOnTheFulfillingSide) {
  FutureState<int> state;
  Promise<int> promise(state);
  Future<int> future(state);
  int seen = 0;
  future.then([&seen](int& v) { seen = v; });
  EXPECT_EQ(seen, 0);
  promise.fulfill(23);
  EXPECT_EQ(seen, 23);
  EXPECT_EQ(future.value(), 23) << "value stays readable after the cont ran";
}

TEST(FutureTest, VoidFutureWorks) {
  FutureState<void> state;
  Promise<void> promise(state);
  Future<void> future(state);
  bool ran = false;
  future.then([&ran] { ran = true; });
  promise.fulfill();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(future.ready());
}

TEST(FutureTest, HandlesAreMovable) {
  FutureState<int> state;
  Promise<int> p1(state);
  Promise<int> p2 = std::move(p1);
  EXPECT_FALSE(p1.valid());
  EXPECT_TRUE(p2.valid());

  Future<int> f1(state);
  Future<int> f2 = std::move(f1);
  EXPECT_FALSE(f1.valid());
  ASSERT_TRUE(f2.valid());

  p2.fulfill(9);
  EXPECT_TRUE(f2.ready());
  EXPECT_EQ(f2.value(), 9);
}

TEST(FutureTest, CrossThreadFulfillRace) {
  // Hammer the bits protocol: fulfiller and continuation-attacher race;
  // the continuation must run exactly once with the value visible.
  for (int round = 0; round < 200; ++round) {
    FutureState<int> state;
    std::atomic<int> fired{0};
    std::atomic<int> observed{0};
    std::thread fulfiller([&] { Promise<int>(state).fulfill(round + 1); });
    Future<int>(state).then([&](int& v) {
      observed.store(v);
      fired.fetch_add(1);
    });
    fulfiller.join();
    EXPECT_EQ(fired.load(), 1);
    EXPECT_EQ(observed.load(), round + 1);
  }
}

TEST(FutureTest, WaitDrivesCallingPersona) {
  FutureState<int> state;
  Future<int> future(state);
  std::thread fulfiller([&] { Promise<int>(state).fulfill(77); });
  future.wait();
  EXPECT_EQ(future.value(), 77);
  fulfiller.join();
}

// --- Persona ---------------------------------------------------------------

struct CountingNode : ProgressNode {
  std::atomic<int>* hits = nullptr;
  static void on_fire(ProgressNode* n) {
    static_cast<CountingNode*>(n)->hits->fetch_add(1);
  }
};

TEST(PersonaTest, CrossThreadEnqueueFiresOnOwnerDrain) {
  Persona persona;
  std::atomic<int> hits{0};
  constexpr int kProducers = 4, kEach = 250;
  std::vector<CountingNode> nodes(kProducers * kEach);
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kEach; ++i) {
          auto& node = nodes[static_cast<std::size_t>(p * kEach + i)];
          node.hits = &hits;
          node.fire = &CountingNode::on_fire;
          persona.enqueue(&node);
        }
      });
    }
  }
  std::size_t drained = 0;
  while (drained < static_cast<std::size_t>(kProducers * kEach)) {
    drained += persona.progress();
  }
  EXPECT_EQ(hits.load(), kProducers * kEach);
  EXPECT_EQ(persona.enqueued(), static_cast<std::uint64_t>(kProducers * kEach));
  EXPECT_TRUE(persona.idle());
}

TEST(PersonaTest, CascadeEnqueueDuringDrainIsFiredInTheSameProgressCall) {
  Persona persona;
  struct ChainNode : ProgressNode {
    Persona* target = nullptr;
    ChainNode* then = nullptr;
    int* order = nullptr;
    int tag = 0;
    static void on_fire(ProgressNode* n) {
      auto* self = static_cast<ChainNode*>(n);
      *self->order = self->tag;
      if (self->then != nullptr) self->target->enqueue(self->then);
    }
  };
  int last = 0;
  ChainNode second{{}, &persona, nullptr, &last, 2};
  ChainNode first{{}, &persona, &second, &last, 1};
  first.fire = second.fire = &ChainNode::on_fire;
  persona.enqueue(&first);
  EXPECT_EQ(persona.progress(), 2u)
      << "a continuation enqueued mid-drain fires in the same progress()";
  EXPECT_EQ(last, 2);
}

TEST(PersonaTest, CurrentIsPerThread) {
  Persona* mine = &Persona::current();
  Persona* theirs = nullptr;
  std::thread other([&] { theirs = &Persona::current(); });
  other.join();
  EXPECT_NE(mine, nullptr);
  EXPECT_NE(mine, theirs);
  EXPECT_EQ(mine, &Persona::current());
}

}  // namespace
}  // namespace amf::concurrency

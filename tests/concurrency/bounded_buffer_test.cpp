#include "concurrency/bounded_buffer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

namespace amf::concurrency {
namespace {

TEST(BoundedBufferTest, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedBuffer<int>(0), std::invalid_argument);
}

TEST(BoundedBufferTest, FifoOrderSingleThread) {
  BoundedBuffer<int> buf(4);
  for (int i = 0; i < 4; ++i) buf.put(i);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buf.take(), i);
}

TEST(BoundedBufferTest, TryPutFailsWhenFull) {
  BoundedBuffer<int> buf(2);
  EXPECT_TRUE(buf.try_put(1));
  EXPECT_TRUE(buf.try_put(2));
  EXPECT_FALSE(buf.try_put(3));
  EXPECT_EQ(buf.size(), 2u);
}

TEST(BoundedBufferTest, TryTakeFailsWhenEmpty) {
  BoundedBuffer<int> buf(2);
  EXPECT_EQ(buf.try_take(), std::nullopt);
  buf.put(9);
  EXPECT_EQ(buf.try_take(), 9);
}

TEST(BoundedBufferTest, PutUntilTimesOutWhenFull) {
  BoundedBuffer<int> buf(1);
  buf.put(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_FALSE(buf.put_until(2, deadline));
}

TEST(BoundedBufferTest, TakeUntilTimesOutWhenEmpty) {
  BoundedBuffer<int> buf(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(buf.take_until(deadline), std::nullopt);
}

TEST(BoundedBufferTest, BlockedPutProceedsAfterTake) {
  BoundedBuffer<int> buf(1);
  buf.put(1);
  std::atomic<bool> done{false};
  std::jthread producer([&] {
    buf.put(2);  // blocks until the take below
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(done.load());
  EXPECT_EQ(buf.take(), 1);
  producer.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(buf.take(), 2);
}

TEST(BoundedBufferTest, MoveOnlyElements) {
  BoundedBuffer<std::unique_ptr<int>> buf(2);
  buf.put(std::make_unique<int>(5));
  auto p = buf.take();
  EXPECT_EQ(*p, 5);
}

// Property sweep: no element lost or duplicated for any combination of
// producers × consumers × capacity.
class BoundedBufferSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::size_t>> {};

TEST_P(BoundedBufferSweep, ConservationUnderContention) {
  const auto [producers, consumers, capacity] = GetParam();
  BoundedBuffer<int> buf(capacity);
  constexpr int kPerProducer = 2'000;
  const long expected_sum =
      static_cast<long>(producers) * kPerProducer * (kPerProducer - 1) / 2;

  std::atomic<long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  const int total = producers * kPerProducer;

  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < kPerProducer; ++i) buf.put(i);
      });
    }
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          if (consumed_count.fetch_add(1) >= total) {
            consumed_count.fetch_sub(1);
            return;
          }
          consumed_sum.fetch_add(buf.take());
        }
      });
    }
  }

  EXPECT_EQ(consumed_count.load(), total);
  EXPECT_EQ(consumed_sum.load(), expected_sum);
  EXPECT_EQ(buf.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BoundedBufferSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(std::size_t{1}, std::size_t{7},
                                         std::size_t{64})));

}  // namespace
}  // namespace amf::concurrency

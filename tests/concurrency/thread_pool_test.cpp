#include "concurrency/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "runtime/clock.hpp"
#include "runtime/fault.hpp"

namespace amf::concurrency {
namespace {

// Occupies the pool's single worker until released, so tests can fill the
// bounded queue deterministically.
struct WorkerGate {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};

  void hold(ThreadPool& pool) {
    ASSERT_TRUE(pool.submit([this] {
      entered.store(true);
      while (!release.load()) std::this_thread::yield();
    }));
    while (!entered.load()) std::this_thread::yield();
  }
};

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, AsyncReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.async([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not hang or throw
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.async([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_seen.load(), 2);  // genuine parallelism observed
}

TEST(ThreadPoolTest, DrainsQueueBeforeJoin) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(BoundedThreadPoolTest, RejectPolicyRefusesWhenQueueFull) {
  ThreadPool pool(ThreadPool::Options{
      .threads = 1,
      .queue_capacity = 1,
      .saturation = ThreadPool::Saturation::kReject});
  WorkerGate gate;
  gate.hold(pool);

  std::atomic<bool> queued_ran{false};
  EXPECT_TRUE(pool.submit([&] { queued_ran.store(true); }));
  EXPECT_FALSE(pool.submit([] { FAIL() << "rejected task must not run"; }));
  EXPECT_FALSE(pool.submit([] { FAIL() << "rejected task must not run"; }));
  EXPECT_EQ(pool.rejected(), 2u);

  gate.release.store(true);
  pool.shutdown();
  EXPECT_TRUE(queued_ran.load()) << "accepted work still drains";
}

TEST(BoundedThreadPoolTest, CallerRunsPolicyExecutesInline) {
  ThreadPool pool(ThreadPool::Options{
      .threads = 1,
      .queue_capacity = 1,
      .saturation = ThreadPool::Saturation::kCallerRuns});
  WorkerGate gate;
  gate.hold(pool);

  EXPECT_TRUE(pool.submit([] {}));  // fills the queue
  std::atomic<bool> inline_ran{false};
  const auto submitter = std::this_thread::get_id();
  std::thread::id ran_on;
  EXPECT_TRUE(pool.submit([&] {
    inline_ran.store(true);
    ran_on = std::this_thread::get_id();
  }));
  EXPECT_TRUE(inline_ran.load()) << "overflow work runs on the submitter";
  EXPECT_EQ(ran_on, submitter);
  EXPECT_EQ(pool.caller_ran(), 1u);

  gate.release.store(true);
}

TEST(BoundedThreadPoolTest, ExpiredEntryIsDroppedAtDequeue) {
  runtime::ManualClock clock;
  ThreadPool pool(ThreadPool::Options{.threads = 1, .clock = &clock});
  WorkerGate gate;
  gate.hold(pool);

  std::atomic<bool> task_ran{false};
  std::atomic<bool> expiry_ran{false};
  EXPECT_TRUE(pool.submit_with_deadline(
      [&] { task_ran.store(true); },
      clock.now() + std::chrono::milliseconds(10),
      [&] { expiry_ran.store(true); }));
  // The deadline passes while the entry waits in the queue.
  clock.advance(std::chrono::milliseconds(20));
  gate.release.store(true);
  pool.shutdown();

  EXPECT_FALSE(task_ran.load()) << "stale work must not execute";
  EXPECT_TRUE(expiry_ran.load()) << "expiry callback answers for the drop";
  EXPECT_EQ(pool.expired(), 1u);
}

TEST(BoundedThreadPoolTest, FreshEntryWithDeadlineStillRuns) {
  runtime::ManualClock clock;
  ThreadPool pool(ThreadPool::Options{.threads = 1, .clock = &clock});
  std::atomic<bool> task_ran{false};
  EXPECT_TRUE(pool.submit_with_deadline(
      [&] { task_ran.store(true); },
      clock.now() + std::chrono::seconds(10),
      [] { FAIL() << "unexpired entry must not trigger expiry"; }));
  pool.shutdown();
  EXPECT_TRUE(task_ran.load());
  EXPECT_EQ(pool.expired(), 0u);
}

TEST(BoundedThreadPoolTest, InjectedDelayPushesQueuedWorkPastItsDeadline) {
  // The kDelay fault point stalls the worker between dequeue and the expiry
  // check — exactly the window where real schedulers lose; the deadline
  // must still be honored.
  runtime::FaultInjector::Options fo;
  fo.seed = 7;
  fo.max_delay = std::chrono::milliseconds(5);
  runtime::FaultInjector fault(fo);
  fault.arm(runtime::FaultPoint::kDelay, 1.0);

  ThreadPool pool(ThreadPool::Options{.threads = 1, .fault = &fault});
  std::atomic<int> expired_cb{0};
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    // Already expired at submission: after the injected delay the worker
    // must shed every one of them.
    EXPECT_TRUE(pool.submit_with_deadline(
        [&] { ran.fetch_add(1); },
        runtime::RealClock::instance().now() - std::chrono::milliseconds(1),
        [&] { expired_cb.fetch_add(1); }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(expired_cb.load(), 8);
  EXPECT_EQ(pool.expired(), 8u);
  EXPECT_GT(fault.fires(runtime::FaultPoint::kDelay), 0u);
}

}  // namespace
}  // namespace amf::concurrency

#include "concurrency/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace amf::concurrency {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.submit([&] { ran.fetch_add(1); }));
    }
  }  // destructor drains
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, AsyncReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.async([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_FALSE(pool.submit([] {}));
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.shutdown();
  pool.shutdown();  // must not hang or throw
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(pool.async([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      in_flight.fetch_sub(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_GE(max_seen.load(), 2);  // genuine parallelism observed
}

TEST(ThreadPoolTest, DrainsQueueBeforeJoin) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(ran.load(), 50);
}

}  // namespace
}  // namespace amf::concurrency

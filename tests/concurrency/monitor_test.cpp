#include "concurrency/monitor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace amf::concurrency {
namespace {

TEST(MonitorTest, WithMutatesUnderLock) {
  Monitor<int> m(10);
  m.with([](int& v) { v += 5; });
  EXPECT_EQ(m.read([](const int& v) { return v; }), 15);
}

TEST(MonitorTest, WithReturnsValue) {
  Monitor<std::string> m(std::string("abc"));
  const auto len = m.with([](std::string& s) { return s.size(); });
  EXPECT_EQ(len, 3u);
}

TEST(MonitorTest, WaitThenBlocksUntilPredicate) {
  Monitor<int> m(0);
  std::jthread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    m.with([](int& v) { v = 7; });
  });
  const int seen =
      m.wait_then([](int& v) { return v == 7; }, [](int& v) { return v; });
  EXPECT_EQ(seen, 7);
}

TEST(MonitorTest, ConcurrentIncrementsAreAtomic) {
  Monitor<long> m(0);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10'000; ++i) m.with([](long& v) { ++v; });
      });
    }
  }
  EXPECT_EQ(m.read([](const long& v) { return v; }), 80'000);
}

TEST(MonitorTest, WaitThenChain) {
  Monitor<std::vector<int>> m;
  std::jthread consumer([&] {
    for (int expect = 0; expect < 100; ++expect) {
      m.wait_then([](std::vector<int>& v) { return !v.empty(); },
                  [&](std::vector<int>& v) {
                    EXPECT_EQ(v.front(), expect);
                    v.erase(v.begin());
                  });
    }
  });
  for (int i = 0; i < 100; ++i) {
    m.wait_then([](std::vector<int>& v) { return v.empty(); },
                [&](std::vector<int>& v) { v.push_back(i); });
  }
}

}  // namespace
}  // namespace amf::concurrency

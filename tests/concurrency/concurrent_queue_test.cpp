#include "concurrency/concurrent_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace amf::concurrency {
namespace {

TEST(ConcurrentQueueTest, PushPopSingleThread) {
  ConcurrentQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(ConcurrentQueueTest, TryPopEmptyReturnsNullopt) {
  ConcurrentQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(3);
  EXPECT_EQ(q.try_pop(), 3);
}

TEST(ConcurrentQueueTest, PopUntilTimesOut) {
  ConcurrentQueue<int> q;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(q.pop_until(deadline), std::nullopt);
}

TEST(ConcurrentQueueTest, CloseRejectsFurtherPushes) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_TRUE(q.closed());
}

TEST(ConcurrentQueueTest, CloseDrainsThenEndsStream) {
  ConcurrentQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);  // end of stream, no block
}

TEST(ConcurrentQueueTest, CloseWakesBlockedConsumer) {
  ConcurrentQueue<int> q;
  std::atomic<bool> ended{false};
  std::jthread consumer([&] {
    EXPECT_EQ(q.pop(), std::nullopt);
    ended.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_TRUE(ended.load());
}

TEST(ConcurrentQueueTest, MpmcConservation) {
  ConcurrentQueue<int> q;
  constexpr int kProducers = 4, kConsumers = 4, kEach = 5'000;
  std::atomic<long> sum{0};
  std::atomic<int> count{0};
  {
    std::vector<std::jthread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
      consumers.emplace_back([&] {
        while (auto v = q.pop()) {
          sum.fetch_add(*v);
          count.fetch_add(1);
        }
      });
    }
    {
      std::vector<std::jthread> producers;
      for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&] {
          for (int i = 0; i < kEach; ++i) q.push(i);
        });
      }
    }
    q.close();
  }
  EXPECT_EQ(count.load(), kProducers * kEach);
  EXPECT_EQ(sum.load(),
            static_cast<long>(kProducers) * kEach * (kEach - 1) / 2);
}

}  // namespace
}  // namespace amf::concurrency

#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amf::runtime {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsDoNotLoseUpdates) {
  Counter c;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 10'000; ++i) c.add();
      });
    }
  }
  EXPECT_EQ(c.value(), 80'000u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(5);
  g.add(-8);
  EXPECT_EQ(g.value(), -3);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(0.5), 0);
}

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  for (int v : {1, 2, 3, 4, 100}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 110);
  EXPECT_DOUBLE_EQ(h.mean(), 22.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.sum(), 0);
}

TEST(HistogramTest, PercentileIsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10);  // bucket [8,16) -> bound 15
  const auto p50 = h.percentile(0.5);
  EXPECT_GE(p50, 10);
  EXPECT_LE(p50, 15);
}

TEST(HistogramTest, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  EXPECT_LE(h.percentile(0.1), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), h.max());
}

TEST(HistogramTest, PercentileClampsP) {
  Histogram h;
  h.record(7);
  EXPECT_EQ(h.percentile(-1.0), h.percentile(0.0));
  EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(HistogramTest, PercentileDoesNotSaturateAtPowerOfTwo) {
  // Regression for the E8 report bug: with pure log2 buckets every sample
  // in [512, 1024) reported p99 = 1023 — percentiles pinned to bucket
  // bounds regardless of where the mass actually sat. With sub-bucketed
  // resolution plus interpolation, a cluster at 1000 must report near
  // 1000, not at the power-of-two ceiling.
  Histogram h;
  for (int i = 0; i < 10'000; ++i) h.record(1000);
  const auto p99 = h.percentile(0.99);
  EXPECT_GE(p99, 1000);
  EXPECT_LE(p99, 1000 + 1000 / 4)
      << "p99 saturated toward the old power-of-two bound";
}

TEST(HistogramTest, SubBucketsSeparateValuesUnderSameExponent) {
  // 5000 and 7000 share one log2 bucket [4096, 8192); the sub-bucketed
  // histogram must keep their percentiles apart.
  Histogram lo, hi;
  for (int i = 0; i < 1'000; ++i) {
    lo.record(5000);
    hi.record(7000);
  }
  EXPECT_LT(lo.percentile(0.5), hi.percentile(0.5));
  EXPECT_LT(lo.percentile(0.99), 6144) << "5000 rounded up past its half";
  EXPECT_GT(hi.percentile(0.99), 6144) << "7000 rounded down past its half";
}

TEST(HistogramTest, PercentileStaysWithinObservedRange) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  for (double p : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    EXPECT_GE(h.percentile(p), h.min());
    EXPECT_LE(h.percentile(p), h.max());
  }
}

TEST(HistogramTest, SmallValuesAreExact) {
  // Unit buckets below the sub-bucket threshold: tiny latencies (0-3 ns)
  // report exactly, not as a shared [0,2) smear.
  Histogram h;
  h.record(1);
  h.record(1);
  h.record(3);
  EXPECT_EQ(h.percentile(0.25), 1);
  EXPECT_EQ(h.percentile(1.0), 3);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(4);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, ConcurrentRecords) {
  Histogram h;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 25'000; ++i) h.record(i % 64);
      });
    }
  }
  EXPECT_EQ(h.count(), 100'000u);
  EXPECT_EQ(h.max(), 63);
}

TEST(RegistryTest, SameNameYieldsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
}

TEST(RegistryTest, DistinctNamesDistinctMetrics) {
  Registry reg;
  EXPECT_NE(&reg.counter("a"), &reg.counter("b"));
  EXPECT_NE(&reg.histogram("a"), &reg.histogram("b"));
}

TEST(RegistryTest, ReportListsAllMetrics) {
  Registry reg;
  reg.counter("requests").add(3);
  reg.gauge("depth").set(2);
  reg.histogram("latency").record(10);
  const auto report = reg.report();
  EXPECT_NE(report.find("counter requests = 3"), std::string::npos);
  EXPECT_NE(report.find("gauge depth = 2"), std::string::npos);
  EXPECT_NE(report.find("histogram latency"), std::string::npos);
}

}  // namespace
}  // namespace amf::runtime

#include "runtime/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace amf::runtime {
namespace {

TEST(ResultTest, SuccessCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(ResultTest, ErrorCarriesCodeAndMessage) {
  Result<int> r(make_error(ErrorCode::kNotFound, "missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing");
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok(7);
  Result<int> bad(make_error(ErrorCode::kTimeout, ""));
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, VoidSuccessByDefault) {
  Result<void> r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kOk);
}

TEST(ResultTest, VoidError) {
  Result<void> r(make_error(ErrorCode::kAborted, "vetoed"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kAborted);
}

TEST(ErrorTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(make_error(ErrorCode::kTimeout, "too slow").to_string(),
            "timeout: too slow");
  EXPECT_EQ(make_error(ErrorCode::kAborted, "").to_string(), "aborted");
}

TEST(ErrorTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(to_string(static_cast<ErrorCode>(c)), "unknown");
  }
}

}  // namespace
}  // namespace amf::runtime

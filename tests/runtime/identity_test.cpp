#include "runtime/identity.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amf::runtime {
namespace {

TEST(PrincipalTest, AnonymousHasNothing) {
  const auto p = Principal::anonymous();
  EXPECT_TRUE(p.name.empty());
  EXPECT_FALSE(p.authenticated());
  EXPECT_FALSE(p.has_role("any"));
}

TEST(PrincipalTest, HasRole) {
  Principal p{"ann", {"manager", "auditor"}, "tok"};
  EXPECT_TRUE(p.has_role("manager"));
  EXPECT_TRUE(p.has_role("auditor"));
  EXPECT_FALSE(p.has_role("admin"));
  EXPECT_TRUE(p.authenticated());
}

TEST(CredentialStoreTest, AddUserRejectsDuplicates) {
  CredentialStore store;
  EXPECT_TRUE(store.add_user("ann", "pw", {}).ok());
  const auto dup = store.add_user("ann", "other", {});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), ErrorCode::kAlreadyExists);
}

TEST(CredentialStoreTest, LoginHappyPath) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "pw", {"manager"}).ok());
  auto session = store.login("ann", "pw");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session.value().name, "ann");
  EXPECT_TRUE(session.value().has_role("manager"));
  EXPECT_TRUE(store.valid_token(session.value().token));
}

TEST(CredentialStoreTest, LoginRejectsUnknownUser) {
  CredentialStore store;
  const auto r = store.login("ghost", "pw");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kUnauthenticated);
}

TEST(CredentialStoreTest, LoginRejectsWrongPassword) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "right", {}).ok());
  const auto r = store.login("ann", "wrong");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kUnauthenticated);
}

TEST(CredentialStoreTest, TokensAreUniquePerLogin) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "pw", {}).ok());
  const auto t1 = store.login("ann", "pw").value().token;
  const auto t2 = store.login("ann", "pw").value().token;
  EXPECT_NE(t1, t2);
  EXPECT_EQ(store.live_sessions(), 2u);
}

TEST(CredentialStoreTest, PrincipalForResolvesToken) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("bob", "pw", {"support"}).ok());
  const auto token = store.login("bob", "pw").value().token;
  const auto p = store.principal_for(token);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->name, "bob");
  EXPECT_TRUE(p->has_role("support"));
  EXPECT_FALSE(store.principal_for("bogus").has_value());
}

TEST(CredentialStoreTest, RevokeInvalidatesToken) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "pw", {}).ok());
  const auto token = store.login("ann", "pw").value().token;
  store.revoke(token);
  EXPECT_FALSE(store.valid_token(token));
  EXPECT_EQ(store.live_sessions(), 0u);
  store.revoke("never-existed");  // must not throw
}

TEST(CredentialStoreTest, ConcurrentLoginsAreSafe) {
  CredentialStore store;
  ASSERT_TRUE(store.add_user("ann", "pw", {}).ok());
  constexpr int kThreads = 8;
  constexpr int kEach = 100;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kEach; ++i) {
          auto s = store.login("ann", "pw");
          ASSERT_TRUE(s.ok());
          EXPECT_TRUE(store.valid_token(s.value().token));
        }
      });
    }
  }
  EXPECT_EQ(store.live_sessions(),
            static_cast<std::size_t>(kThreads * kEach));
}

}  // namespace
}  // namespace amf::runtime

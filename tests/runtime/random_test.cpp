#include "runtime/random.hpp"

#include <gtest/gtest.h>

#include <set>

namespace amf::runtime {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5u);
}

TEST(RngTest, BernoulliRoughlyMatchesP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(RngTest, MeanOfUniformNearHalf) {
  Rng rng(17);
  double sum = 0;
  constexpr int kTrials = 100'000;
  for (int i = 0; i < kTrials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kTrials, 0.5, 0.01);
}

}  // namespace
}  // namespace amf::runtime

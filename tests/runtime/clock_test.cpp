#include "runtime/clock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amf::runtime {
namespace {

TEST(RealClockTest, IsMonotonic) {
  RealClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_LE(a, b);
}

TEST(RealClockTest, AdvancesWithWallTime) {
  RealClock clock;
  const auto a = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(clock.now() - a, std::chrono::milliseconds(1));
}

TEST(RealClockTest, SingletonIsSteadyCompatible) {
  EXPECT_TRUE(RealClock::instance().is_steady_compatible());
}

TEST(ManualClockTest, OnlyMovesWhenAdvanced) {
  ManualClock clock;
  const auto a = clock.now();
  EXPECT_EQ(clock.now(), a);
  clock.advance(std::chrono::seconds(5));
  EXPECT_EQ(clock.now() - a, std::chrono::seconds(5));
}

TEST(ManualClockTest, NotSteadyCompatible) {
  ManualClock clock;
  EXPECT_FALSE(clock.is_steady_compatible());
}

TEST(ManualClockTest, ConcurrentAdvancesAccumulate) {
  ManualClock clock;
  const auto start = clock.now();
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) clock.advance(std::chrono::nanoseconds(1));
      });
    }
  }
  EXPECT_EQ((clock.now() - start).count(), 4000);
}

TEST(StopwatchTest, MeasuresManualTime) {
  ManualClock clock;
  Stopwatch sw(clock);
  clock.advance(std::chrono::milliseconds(30));
  EXPECT_EQ(sw.elapsed(), std::chrono::milliseconds(30));
  sw.reset();
  EXPECT_EQ(sw.elapsed(), Duration{0});
}

}  // namespace
}  // namespace amf::runtime

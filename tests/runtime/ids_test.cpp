#include "runtime/ids.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace amf::runtime {
namespace {

TEST(InternerTest, InternReturnsStableIds) {
  Interner interner;
  const auto a = interner.intern("alpha");
  const auto b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.intern("beta"), b);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, NameRoundTrips) {
  Interner interner;
  const auto id = interner.intern("round-trip");
  EXPECT_EQ(interner.name(id), "round-trip");
}

TEST(InternerTest, LookupWithoutInterning) {
  Interner interner;
  EXPECT_EQ(interner.lookup("ghost"), Interner::kInvalid);
  (void)interner.intern("ghost");
  EXPECT_NE(interner.lookup("ghost"), Interner::kInvalid);
}

TEST(InternerTest, UnknownIdYieldsEmptyName) {
  Interner interner;
  EXPECT_EQ(interner.name(12345), "");
}

TEST(InternerTest, ViewsRemainValidAcrossGrowth) {
  Interner interner;
  const auto first = interner.intern("first");
  const std::string_view view = interner.name(first);
  for (int i = 0; i < 1000; ++i) {
    (void)interner.intern("filler-" + std::to_string(i));
  }
  EXPECT_EQ(view, "first");  // deque storage must not move
}

TEST(InternerTest, ConcurrentInterningIsConsistent) {
  Interner interner;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kNames; ++i) {
          ids[t].push_back(interner.intern("name-" + std::to_string(i)));
        }
      });
    }
  }
  // Every thread must have observed identical ids for identical names.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  EXPECT_EQ(interner.size(), static_cast<std::size_t>(kNames));
}

TEST(MethodIdTest, DefaultIsInvalid) {
  MethodId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.name(), "");
}

TEST(MethodIdTest, OfInternsAndCompares) {
  const auto open = MethodId::of("open");
  const auto assign = MethodId::of("assign");
  EXPECT_TRUE(open.valid());
  EXPECT_NE(open, assign);
  EXPECT_EQ(open, MethodId::of("open"));
  EXPECT_EQ(open.name(), "open");
}

TEST(MethodIdTest, MethodAndKindSpacesAreIndependent) {
  const auto m = MethodId::of("sync");
  const auto k = AspectKind::of("sync");
  // Same spelling, different id spaces; both resolve their own names.
  EXPECT_EQ(m.name(), "sync");
  EXPECT_EQ(k.name(), "sync");
}

TEST(MethodIdTest, HashIsUsableInUnorderedContainers) {
  std::set<std::size_t> hashes;
  for (int i = 0; i < 50; ++i) {
    hashes.insert(
        std::hash<MethodId>{}(MethodId::of("m" + std::to_string(i))));
  }
  EXPECT_GT(hashes.size(), 40u);  // dense ids, distinct hashes
}

TEST(WellKnownKindsTest, AreDistinct) {
  const AspectKind all[] = {
      kinds::synchronization(), kinds::authentication(),
      kinds::authorization(),   kinds::scheduling(),
      kinds::audit(),           kinds::timing(),
      kinds::fault_tolerance(), kinds::quota()};
  std::set<std::uint32_t> values;
  for (const auto k : all) values.insert(k.value());
  EXPECT_EQ(values.size(), std::size(all));
}

TEST(WellKnownKindsTest, AreStableAcrossCalls) {
  EXPECT_EQ(kinds::synchronization(), kinds::synchronization());
  EXPECT_EQ(kinds::audit().name(), "audit");
}

}  // namespace
}  // namespace amf::runtime

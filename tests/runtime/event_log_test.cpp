#include "runtime/event_log.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace amf::runtime {
namespace {

TEST(EventLogTest, AppendAssignsIncreasingSequenceNumbers) {
  EventLog log;
  const auto s1 = log.append("cat", "one");
  const auto s2 = log.append("cat", "two");
  EXPECT_LT(s1, s2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(EventLogTest, SnapshotPreservesAppendOrder) {
  EventLog log;
  log.append("a", "1");
  log.append("b", "2");
  log.append("a", "3");
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].message, "1");
  EXPECT_EQ(events[1].message, "2");
  EXPECT_EQ(events[2].message, "3");
}

TEST(EventLogTest, ByCategoryFilters) {
  EventLog log;
  log.append("audit", "x");
  log.append("moderator", "y");
  log.append("audit", "z");
  const auto audit = log.by_category("audit");
  ASSERT_EQ(audit.size(), 2u);
  EXPECT_EQ(audit[0].message, "x");
  EXPECT_EQ(audit[1].message, "z");
}

TEST(EventLogTest, ByInvocationFilters) {
  EventLog log;
  log.append("m", "a", 7);
  log.append("m", "b", 8);
  log.append("m", "c", 7);
  const auto inv7 = log.by_invocation(7);
  ASSERT_EQ(inv7.size(), 2u);
  EXPECT_EQ(inv7[0].message, "a");
  EXPECT_EQ(inv7[1].message, "c");
}

TEST(EventLogTest, FindReturnsFirstMatch) {
  EventLog log;
  log.append("c", "m", 1);
  log.append("c", "m", 2);
  const auto e = log.find("c", "m");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->invocation_id, 1u);
  EXPECT_FALSE(log.find("c", "nope").has_value());
}

TEST(EventLogTest, CountMatches) {
  EventLog log;
  log.append("c", "m");
  log.append("c", "m");
  log.append("c", "other");
  EXPECT_EQ(log.count("c", "m"), 2u);
  EXPECT_EQ(log.count("c", "missing"), 0u);
}

TEST(EventLogTest, HappenedBeforeOrdersEvents) {
  EventLog log;
  log.append("p", "first");
  log.append("p", "second");
  EXPECT_TRUE(log.happened_before("p", "first", "p", "second"));
  EXPECT_FALSE(log.happened_before("p", "second", "p", "first"));
  EXPECT_FALSE(log.happened_before("p", "first", "p", "missing"));
}

TEST(EventLogTest, ClearKeepsSequenceMonotonic) {
  EventLog log;
  const auto s1 = log.append("c", "a");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  const auto s2 = log.append("c", "b");
  EXPECT_GT(s2, s1);
}

TEST(EventLogTest, ManualClockTimestamps) {
  ManualClock clock;
  EventLog log(clock);
  log.append("c", "early");
  clock.advance(std::chrono::seconds(1));
  log.append("c", "late");
  const auto events = log.snapshot();
  EXPECT_EQ(events[1].time - events[0].time, std::chrono::seconds(1));
}

TEST(EventLogTest, ConcurrentAppendsAllRecorded) {
  EventLog log;
  constexpr int kThreads = 8;
  constexpr int kEach = 500;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kEach; ++i) log.append("stress", "e");
      });
    }
  }
  EXPECT_EQ(log.size(), static_cast<std::size_t>(kThreads * kEach));
  // Sequence numbers must be unique and dense.
  auto events = log.snapshot();
  std::set<std::uint64_t> seqs;
  for (const auto& e : events) seqs.insert(e.seq);
  EXPECT_EQ(seqs.size(), events.size());
}

TEST(EventLogTest, DisabledLogDropsAppendsWithoutConsumingSequence) {
  EventLog log;
  const auto before = log.append("cat", "kept");
  log.set_enabled(false);
  EXPECT_FALSE(log.enabled());
  EXPECT_EQ(log.append("cat", "dropped"), 0u);
  EXPECT_EQ(log.size(), 1u);
  // History recorded while enabled stays queryable.
  EXPECT_TRUE(log.find("cat", "kept").has_value());
  log.set_enabled(true);
  const auto after = log.append("cat", "resumed");
  // No sequence number was consumed by the dropped append.
  EXPECT_EQ(after, before + 1);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_FALSE(log.find("cat", "dropped").has_value());
}

}  // namespace
}  // namespace amf::runtime

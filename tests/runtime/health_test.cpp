// HealthRegistry tests: the state machine, impaired() semantics, deferred
// listener delivery, probe hysteresis with backoff growth, probe/report
// races, and the observability surface (events, gauges, counters).
#include "runtime/health.hpp"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/clock.hpp"
#include "runtime/event_log.hpp"
#include "runtime/metrics.hpp"

namespace amf::runtime {
namespace {

using namespace std::chrono_literals;

HealthOptions manual_options(const ManualClock& clock) {
  HealthOptions options;
  options.clock = &clock;
  options.jitter = 0.0;  // deterministic schedules
  options.probe_initial_backoff = 10ms;
  options.recover_after = 2;
  return options;
}

TEST(HealthRegistryTest, UnknownResourcesAreHealthy) {
  HealthRegistry health;
  EXPECT_EQ(health.state("nope"), HealthState::kHealthy);
  EXPECT_FALSE(health.impaired("nope"));
  EXPECT_TRUE(health.resources().empty());
}

TEST(HealthRegistryTest, ReportsMoveTheStateMachine) {
  ManualClock clock;
  HealthRegistry health(manual_options(clock));
  health.track("db");
  EXPECT_EQ(health.state("db"), HealthState::kHealthy);

  health.report_degraded("db", "slow");
  EXPECT_EQ(health.state("db"), HealthState::kDegraded);
  EXPECT_FALSE(health.impaired("db"));  // degraded keeps primary service

  health.report_fenced("db", "io fault");
  EXPECT_EQ(health.state("db"), HealthState::kFenced);
  EXPECT_TRUE(health.impaired("db"));

  // Severity is sticky: a degraded report cannot downgrade a fence.
  health.report_degraded("db", "late report");
  EXPECT_EQ(health.state("db"), HealthState::kFenced);

  health.report_healthy("db", "operator fixed it");
  EXPECT_EQ(health.state("db"), HealthState::kHealthy);
  EXPECT_FALSE(health.impaired("db"));
}

TEST(HealthRegistryTest, ReportsAutoTrackUnknownResources) {
  HealthRegistry health;
  health.report_fenced("surprise", "first contact");
  EXPECT_EQ(health.state("surprise"), HealthState::kFenced);
  EXPECT_EQ(health.resources(), std::vector<std::string>{"surprise"});
}

TEST(HealthRegistryTest, ListenersFireOnPumpNotInsideReports) {
  ManualClock clock;
  HealthRegistry health(manual_options(clock));
  std::vector<std::string> seen;
  health.subscribe([&](std::string_view r, HealthState from, HealthState to) {
    seen.push_back(std::string(r) + ":" + std::string(to_string(from)) + "->" +
                   std::string(to_string(to)));
  });

  health.report_fenced("wal", "torn write");
  EXPECT_TRUE(seen.empty());  // deferred — a report never runs listeners

  health.pump();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "wal:healthy->fenced");

  health.pump();
  EXPECT_EQ(seen.size(), 1u);  // drained; pump is idempotent
}

TEST(HealthRegistryTest, GenerationBumpsOnEveryTransition) {
  HealthRegistry health;
  const auto g0 = health.generation();
  health.report_degraded("a");
  health.report_fenced("a");
  EXPECT_EQ(health.generation(), g0 + 2);
  health.report_degraded("a");  // ignored under fence: no transition
  EXPECT_EQ(health.generation(), g0 + 2);
}

TEST(HealthRegistryTest, ProbeHysteresisRecoversAfterConsecutiveSuccesses) {
  ManualClock clock;
  auto options = manual_options(clock);
  HealthRegistry health(options);

  bool device_ok = false;
  int probes = 0;
  health.track("dev", [&] {
    ++probes;
    return device_ok;
  });
  health.report_fenced("dev", "fault");

  // Not due yet: the first probe waits out the initial backoff.
  EXPECT_EQ(health.tick(), 0u);
  clock.advance(10ms);
  EXPECT_EQ(health.tick(), 1u);
  EXPECT_EQ(probes, 1);
  // Failed probe: back to fenced, impaired throughout.
  EXPECT_EQ(health.state("dev"), HealthState::kFenced);
  EXPECT_TRUE(health.impaired("dev"));

  // Backoff grew (x2): 10ms is no longer enough.
  clock.advance(10ms);
  EXPECT_EQ(health.tick(), 0u);
  clock.advance(10ms);
  EXPECT_EQ(health.tick(), 1u);
  EXPECT_EQ(probes, 2);

  // Device comes back: recover_after=2 successes needed, and the resource
  // stays impaired (probing a fence) until hysteresis completes.
  device_ok = true;
  clock.advance(40ms);
  EXPECT_EQ(health.tick(), 1u);
  EXPECT_EQ(health.state("dev"), HealthState::kProbing);
  EXPECT_TRUE(health.impaired("dev"));

  clock.advance(10ms);  // successes re-probe at the initial cadence
  EXPECT_EQ(health.tick(), 1u);
  EXPECT_EQ(health.state("dev"), HealthState::kHealthy);
  EXPECT_FALSE(health.impaired("dev"));
  EXPECT_EQ(probes, 4);
}

TEST(HealthRegistryTest, ProbingADegradationIsNotImpaired) {
  ManualClock clock;
  HealthRegistry health(manual_options(clock));
  health.track("svc", [] { return false; });
  health.report_degraded("svc", "breaker open");
  clock.advance(10ms);
  EXPECT_EQ(health.tick(), 1u);
  // Probe failed: still a degradation, never trips fallback.
  EXPECT_EQ(health.state("svc"), HealthState::kDegraded);
  EXPECT_FALSE(health.impaired("svc"));
}

TEST(HealthRegistryTest, ReportDuringProbeBeatsStaleVerdict) {
  ManualClock clock;
  HealthRegistry health(manual_options(clock));
  // The probe itself reports a fence mid-flight (stands in for any racing
  // reporter): its own "success" verdict must be discarded.
  health.track("dev", [&] {
    health.report_fenced("dev", "failed again mid-probe");
    return true;
  });
  health.report_fenced("dev", "fault");
  clock.advance(10ms);
  EXPECT_EQ(health.tick(), 1u);
  EXPECT_EQ(health.state("dev"), HealthState::kFenced);
  EXPECT_TRUE(health.impaired("dev"));
}

TEST(HealthRegistryTest, EventsGaugesAndCounters) {
  ManualClock clock;
  EventLog log(clock);
  Registry metrics;
  auto options = manual_options(clock);
  options.log = &log;
  options.metrics = &metrics;
  HealthRegistry health(options);

  health.report_fenced("wal", "io");
  EXPECT_EQ(metrics.gauge("health.wal").value(),
            static_cast<std::int64_t>(HealthState::kFenced));
  EXPECT_EQ(metrics.counter("health.transitions").value(), 1u);
  EXPECT_EQ(log.by_category("health").size(), 1u);
  EXPECT_TRUE(log.find("health", "wal: healthy->fenced (io)").has_value());

  health.report_healthy("wal");
  EXPECT_EQ(metrics.gauge("health.wal").value(), 0);
}

TEST(HealthRegistryTest, BackgroundProberDrivesRecovery) {
  HealthOptions options;  // real clock
  options.probe_initial_backoff = std::chrono::milliseconds(1);
  options.probe_max_backoff = std::chrono::milliseconds(2);
  options.recover_after = 1;
  options.poll = std::chrono::milliseconds(1);
  HealthRegistry health(options);
  health.track("dev", [] { return true; });
  health.report_fenced("dev", "flap");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (health.state("dev") != HealthState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(health.state("dev"), HealthState::kHealthy);
}

}  // namespace
}  // namespace amf::runtime

// Tests for the deterministic fault injector (DESIGN.md §10).
//
// The property everything else rests on: the verdict of the k-th decision
// at a point is a pure function of (seed, point, k) — not of threads,
// timing, or which component asked. Plus the operational knobs: arming,
// fire caps, env-seed override, and the skewed clock decorator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "runtime/clock.hpp"
#include "runtime/fault.hpp"
#include "runtime/result.hpp"

namespace amf::runtime {
namespace {

std::vector<bool> verdicts(FaultInjector& inj, FaultPoint point, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(inj.fire(point));
  return out;
}

TEST(FaultInjectorTest, DisarmedPointsNeverFire) {
  FaultInjector inj(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.fire(FaultPoint::kPrecondition));
  }
  EXPECT_EQ(inj.fires(FaultPoint::kPrecondition), 0u);
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultInjector a(7);
  FaultInjector b(7);
  a.arm(FaultPoint::kPostaction, 0.3);
  b.arm(FaultPoint::kPostaction, 0.3);
  EXPECT_EQ(verdicts(a, FaultPoint::kPostaction, 500),
            verdicts(b, FaultPoint::kPostaction, 500));
  EXPECT_EQ(a.fires(FaultPoint::kPostaction),
            b.fires(FaultPoint::kPostaction));
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(7);
  FaultInjector b(8);
  a.arm(FaultPoint::kDropMessage, 0.5);
  b.arm(FaultPoint::kDropMessage, 0.5);
  EXPECT_NE(verdicts(a, FaultPoint::kDropMessage, 500),
            verdicts(b, FaultPoint::kDropMessage, 500));
}

TEST(FaultInjectorTest, PointsAreIndependentStreams) {
  // Same seed, two points: distinct schedules (a shared stream would let
  // one subsystem's probe rate shift another's fault pattern).
  FaultInjector a(11);
  FaultInjector b(11);
  a.arm(FaultPoint::kPrecondition, 0.5);
  b.arm(FaultPoint::kDelay, 0.5);
  EXPECT_NE(verdicts(a, FaultPoint::kPrecondition, 500),
            verdicts(b, FaultPoint::kDelay, 500));
}

TEST(FaultInjectorTest, ProbabilityExtremes) {
  FaultInjector inj(3);
  inj.arm(FaultPoint::kEntry, 1.0);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(inj.fire(FaultPoint::kEntry));
  inj.arm(FaultPoint::kClockSkew, 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(inj.fire(FaultPoint::kClockSkew));
  }
}

TEST(FaultInjectorTest, FireCapStopsTheStorm) {
  FaultInjector inj(5);
  inj.arm(FaultPoint::kDropMessage, 1.0, 3);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (inj.fire(FaultPoint::kDropMessage)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.fires(FaultPoint::kDropMessage), 3u);
  EXPECT_EQ(inj.decisions(FaultPoint::kDropMessage), 100u);
}

TEST(FaultInjectorTest, DisarmStopsFiring) {
  FaultInjector inj(5);
  inj.arm(FaultPoint::kDelay, 1.0);
  EXPECT_TRUE(inj.fire(FaultPoint::kDelay));
  inj.disarm(FaultPoint::kDelay);
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(inj.fire(FaultPoint::kDelay));
}

TEST(FaultInjectorTest, ScheduleIsThreadCountInvariant) {
  // The SET of firing decision indices must not depend on how many threads
  // share the injector — only their distribution across threads may.
  FaultInjector serial(13);
  serial.arm(FaultPoint::kPostaction, 0.25);
  constexpr int kDecisions = 800;
  int serial_fires = 0;
  for (int i = 0; i < kDecisions; ++i) {
    if (serial.fire(FaultPoint::kPostaction)) ++serial_fires;
  }

  FaultInjector shared(13);
  shared.arm(FaultPoint::kPostaction, 0.25);
  std::atomic<int> parallel_fires{0};
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kDecisions / 4; ++i) {
          if (shared.fire(FaultPoint::kPostaction)) {
            parallel_fires.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(parallel_fires.load(), serial_fires);
  EXPECT_EQ(shared.decisions(FaultPoint::kPostaction),
            static_cast<std::uint64_t>(kDecisions));
}

TEST(FaultInjectorTest, DelayIsPositiveAndBounded) {
  FaultInjector::Options opts;
  opts.seed = 9;
  opts.max_delay = std::chrono::microseconds(200);
  FaultInjector inj(opts);
  inj.arm(FaultPoint::kDelay, 1.0);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(inj.fire(FaultPoint::kDelay));
    const auto d = inj.delay(FaultPoint::kDelay);
    EXPECT_GT(d, Duration{0});
    EXPECT_LE(d, opts.max_delay);
  }
}

TEST(FaultInjectorTest, EnvSeedOverridesFallback) {
  ASSERT_EQ(setenv("AMF_FAULT_SEED", "12345", 1), 0);
  EXPECT_EQ(FaultInjector::env_seed(1), 12345u);
  ASSERT_EQ(setenv("AMF_FAULT_SEED", "not-a-number", 1), 0);
  EXPECT_EQ(FaultInjector::env_seed(77), 77u);
  ASSERT_EQ(unsetenv("AMF_FAULT_SEED"), 0);
  EXPECT_EQ(FaultInjector::env_seed(77), 77u);
}

TEST(FaultInjectorTest, GoldenSchedulesSurviveEnumGrowth) {
  // The k-th decision at a point is hash(seed, point, k) — a pure function
  // of the point's NUMERIC value. These masks pin the first 64 verdicts at
  // seed 42, p = 0.3, for points old and new: if extending FaultPoint (the
  // storage kinds appended in the durability wave, or any future ones)
  // ever shifted an existing stream, every seed-pinned chaos repro in CI
  // would silently change meaning. Bit i set = decision i fired.
  const struct {
    FaultPoint point;
    std::uint64_t mask;
  } golden[] = {
      {FaultPoint::kPrecondition, 0x9858C6B003258456ull},
      {FaultPoint::kPostaction, 0x4E5125B2E64C8C67ull},
      {FaultPoint::kDropMessage, 0xD021512B023D0980ull},
      {FaultPoint::kShortWrite, 0x4804A68058181800ull},
      {FaultPoint::kIoError, 0x234012083A500AC8ull},
      {FaultPoint::kCrashPoint, 0x805B908625208E20ull},
  };
  for (const auto& g : golden) {
    FaultInjector inj(42);
    inj.arm(g.point, 0.3);
    std::uint64_t mask = 0;
    for (int i = 0; i < 64; ++i) {
      if (inj.fire(g.point)) mask |= std::uint64_t(1) << i;
    }
    EXPECT_EQ(mask, g.mask) << "schedule drifted at " << to_string(g.point);
  }
}

TEST(FaultInjectorTest, StorageKindsAreIndependentStreams) {
  // The three storage-edge kinds draw from distinct streams — from each
  // other and from the older points — at the same seed, so arming, say,
  // kIoError in a test never changes which appends tear under kShortWrite.
  const FaultPoint points[] = {FaultPoint::kShortWrite, FaultPoint::kIoError,
                               FaultPoint::kCrashPoint,
                               FaultPoint::kPostaction};
  std::vector<std::vector<bool>> schedules;
  for (const auto point : points) {
    FaultInjector inj(11);
    inj.arm(point, 0.5);
    schedules.push_back(verdicts(inj, point, 500));
  }
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    for (std::size_t j = i + 1; j < schedules.size(); ++j) {
      EXPECT_NE(schedules[i], schedules[j])
          << to_string(points[i]) << " and " << to_string(points[j])
          << " share a stream";
    }
  }
}

TEST(FaultInjectorTest, ToStringCoversTheStorageKinds) {
  EXPECT_EQ(to_string(FaultPoint::kShortWrite), "short-write");
  EXPECT_EQ(to_string(FaultPoint::kIoError), "io-error");
  EXPECT_EQ(to_string(FaultPoint::kCrashPoint), "crash-point");
  EXPECT_EQ(to_string(ErrorCode::kCorrupted), "corrupted");
}

TEST(SkewedClockTest, NoSkewWhenDisarmed) {
  ManualClock base;
  FaultInjector inj(2);
  SkewedClock clock(base, inj);
  const auto t0 = clock.now();
  base.advance(std::chrono::milliseconds(5));
  EXPECT_EQ(clock.now() - t0, Duration(std::chrono::milliseconds(5)));
  EXPECT_EQ(clock.skew(), Duration{0});
}

TEST(SkewedClockTest, SkewAccumulatesForwardOnly) {
  ManualClock base;
  FaultInjector inj(2);
  inj.arm(FaultPoint::kClockSkew, 1.0);
  SkewedClock clock(base, inj);
  auto prev = clock.now();
  for (int i = 0; i < 20; ++i) {
    const auto t = clock.now();
    EXPECT_GE(t, prev) << "skewed clock went backwards";
    prev = t;
  }
  EXPECT_GT(clock.skew(), Duration{0});
  EXPECT_FALSE(clock.is_steady_compatible());
}

}  // namespace
}  // namespace amf::runtime

// The paper's running example (§4): a trouble-ticketing server where
// clients open tickets and support staff assign them — a bounded-buffer
// producer/consumer moderated entirely by synchronization aspects.
//
// Run: ./build/examples/trouble_ticketing [producers] [consumers] [tickets]
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/ticket/ticket_proxy.hpp"
#include "runtime/event_log.hpp"

int main(int argc, char** argv) {
  using namespace amf;
  using namespace amf::apps::ticket;

  const int producers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int consumers = argc > 2 ? std::atoi(argv[2]) : 4;
  const int per_producer = argc > 3 ? std::atoi(argv[3]) : 1'000;
  const std::size_t capacity = 8;

  runtime::EventLog log;
  core::ModeratorOptions options;
  options.log = &log;
  auto proxy = make_ticket_proxy(capacity, options);

  std::atomic<long> assigned_total{0};
  const long expected = static_cast<long>(producers) * per_producer;

  {
    std::vector<std::jthread> threads;
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (int i = 0; i < per_producer; ++i) {
          Ticket t;
          t.id = static_cast<std::uint64_t>(p) * 1'000'000 + i;
          t.description = "printer on fire";
          t.opened_by = "client-" + std::to_string(p);
          auto r = open_ticket(*proxy, std::move(t));
          if (!r.ok()) {
            std::cerr << "open failed: " << r.error.to_string() << '\n';
            return;
          }
        }
      });
    }
    for (int c = 0; c < consumers; ++c) {
      threads.emplace_back([&] {
        while (assigned_total.load() < expected) {
          auto r = proxy->call(assign_method())
                       .within(std::chrono::milliseconds(100))
                       .run([](TicketServer& s) { return s.assign(); });
          if (r.ok()) {
            assigned_total.fetch_add(1);
          } else if (r.status != core::InvocationStatus::kTimedOut) {
            std::cerr << "assign failed: " << r.error.to_string() << '\n';
            return;
          }
          // timeouts simply re-check the done condition
        }
      });
    }
  }

  const auto open_stats = proxy->moderator().stats(open_method());
  const auto assign_stats = proxy->moderator().stats(assign_method());
  std::cout << "tickets opened:   " << proxy->component().total_opened()
            << '\n'
            << "tickets assigned: " << proxy->component().total_assigned()
            << '\n'
            << "still pending:    " << proxy->component().pending() << '\n'
            << "open  { admitted=" << open_stats.admitted
            << " blocked=" << open_stats.block_events << " }\n"
            << "assign{ admitted=" << assign_stats.admitted
            << " blocked=" << assign_stats.block_events
            << " timeouts=" << assign_stats.timed_out << " }\n"
            << "moderator protocol events logged: " << log.size() << '\n';

  return assigned_total.load() == expected ? 0 : 1;
}

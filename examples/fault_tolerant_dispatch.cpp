// Fault-tolerant dispatch: a load balancer over three moderated ticket
// servers, with circuit breakers composed per backend (§2's load-balancing
// and fault-tolerance concerns, zero changes to TicketServer).
//
// The demo kills one backend mid-run (its bodies start throwing), watches
// the breaker trip and traffic fail over, then lets the backend heal and
// watches the half-open probe close the breaker again.
//
// Run: ./build/examples/fault_tolerant_dispatch
#include <atomic>
#include <iostream>
#include <thread>

#include "apps/dispatch/dispatcher.hpp"

using namespace amf;
using namespace amf::apps;

namespace {

const char* state_name(aspects::CircuitBreakerAspect::State s) {
  switch (s) {
    case aspects::CircuitBreakerAspect::State::kClosed:
      return "closed";
    case aspects::CircuitBreakerAspect::State::kOpen:
      return "open";
    case aspects::CircuitBreakerAspect::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

}  // namespace

int main() {
  dispatch::TicketDispatcher::Options options;
  options.breaker.failure_threshold = 3;
  options.breaker.cooldown = std::chrono::milliseconds(100);
  dispatch::TicketDispatcher dispatcher(3, 32, options);

  // Phase 1: healthy cluster, spread 30 tickets.
  for (int i = 0; i < 30; ++i) {
    if (!dispatcher.open(ticket::Ticket{static_cast<std::uint64_t>(i),
                                        "routine", "ops"})
             .ok()) {
      std::cerr << "unexpected open failure\n";
      return 1;
    }
  }
  auto routes = dispatcher.route_counts();
  std::cout << "phase 1 routing: " << routes[0] << "/" << routes[1] << "/"
            << routes[2] << " (healthy round-robin)\n";

  // Phase 2: backend 0 starts failing; three direct failures trip it.
  for (int i = 0; i < 3; ++i) {
    (void)dispatcher.backend(0)
        .call(ticket::open_method())
        .run([](ticket::TicketServer&) {
          throw std::runtime_error("raid controller gone");
        });
  }
  std::cout << "phase 2 breaker[0]: " << state_name(dispatcher.breaker(0).state())
            << " after 3 body failures\n";

  // Traffic continues; backend 0 is skipped while open.
  const auto before = dispatcher.route_counts();
  std::size_t backend0_served = 0;
  for (int i = 0; i < 30; ++i) {
    if (dispatcher.open(ticket::Ticket{100u + static_cast<std::uint64_t>(i),
                                       "failover", "ops"})
            .ok()) {
      // Count how many actually landed on backend 0 (pending delta).
    }
  }
  backend0_served = dispatcher.backend(0).component().pending();
  std::cout << "phase 2 backend0 pending: " << backend0_served
            << " (was 10 before the trip; open circuit fails fast)\n";

  // Phase 3: cooldown passes; a healthy probe closes the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto probe = dispatcher.open(ticket::Ticket{999, "probe", "ops"});
  std::cout << "phase 3 probe: " << core::to_string(probe.status)
            << ", breaker[0]: " << state_name(dispatcher.breaker(0).state())
            << "\n";

  // Drain everything to prove conservation across the failover.
  std::size_t drained = 0;
  while (dispatcher.assign().ok()) ++drained;
  std::cout << "drained " << drained << " tickets, pending now "
            << dispatcher.pending() << "\n";

  const bool ok = dispatcher.pending() == 0 && probe.ok();
  std::cout << (ok ? "fault-tolerant dispatch OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}

// Durable trouble-ticketing (DESIGN.md §15): the paper's running example
// with the persistence concern composed in — and the component untouched.
//
// TicketServer is the same sequential bounded buffer as in
// trouble_ticketing.cpp; the write-ahead log, snapshots and crash recovery
// all arrive through the aspect bank (kind order sync → exclusion →
// persist). This example demonstrates the full durability story:
//
//   1. open a durable app over an empty directory, take traffic;
//   2. CRASH — a forked child raises SIGKILL on itself mid-run, exactly
//      like a power cut (no destructors, no flushes, nothing graceful);
//   3. reopen the same directory: the log tail replays through the real
//      moderated proxy and every committed ticket is back;
//   4. checkpoint, crash again, reopen: recovery now restores the snapshot
//      and replays only the records past it.
//
// Doubles as a smoke test: exits non-zero when any invariant fails.
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <iostream>

#include "apps/ticket/durable_ticket.hpp"

using namespace amf;
using apps::ticket::DurableTicketApp;
using apps::ticket::Ticket;

namespace {

constexpr const char* kDir = "/tmp/amf_durable_ticketing_example";

DurableTicketApp::Options options() {
  DurableTicketApp::Options o;
  o.capacity = 16;
  o.wal.sync_every = 1;  // strict mode: every commit is fsynced before ack
  return o;
}

runtime::Principal staff(const char* name) {
  runtime::Principal p;
  p.name = name;
  return p;
}

Ticket ticket(std::uint64_t id, const char* desc) {
  Ticket t;
  t.id = id;
  t.description = desc;
  t.opened_by = "alice";
  return t;
}

int fail(const char* what) {
  std::cerr << "FAILED: " << what << '\n';
  return 1;
}

/// Forks a child that runs `work` against its own app instance and then
/// dies by SIGKILL — a power cut, not a shutdown. Returns false unless the
/// child was killed as expected.
template <typename Work>
bool crash_a_process_doing(Work work) {
  const pid_t pid = ::fork();
  if (pid == -1) return false;
  if (pid == 0) {
    auto app = DurableTicketApp::open(kDir, options());
    if (!app.ok()) ::_exit(2);
    if (!work(*app.value())) ::_exit(3);
    ::raise(SIGKILL);  // no destructors run past this point
    ::_exit(4);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

}  // namespace

int main() {
  std::filesystem::remove_all(kDir);

  // --- 1+2: take traffic, then die mid-run -------------------------------
  const bool crashed = crash_a_process_doing([](DurableTicketApp& app) {
    for (std::uint64_t id = 1; id <= 5; ++id) {
      if (!app.open_ticket(ticket(id, "printer on fire"), staff("alice"))
               .ok()) {
        return false;
      }
    }
    return app.assign_ticket(staff("oncall")).ok();
  });
  if (!crashed) return fail("first crash child did not die by SIGKILL");

  // --- 3: reopen, replay the log through the live proxy ------------------
  {
    auto app = DurableTicketApp::open(kDir, options());
    if (!app.ok()) return fail(app.error().to_string().c_str());
    std::cout << "recovered: replayed " << app.value()->recovery_stats().replayed
              << " commits from the log (no snapshot yet)\n";
    if (app.value()->recovery_stats().replayed != 6) {
      return fail("expected all 6 commits to replay");
    }
    if (app.value()->total_opened() != 5 || app.value()->total_assigned() != 1 ||
        app.value()->pending() != 4) {
      return fail("recovered state diverged from committed history");
    }
    // --- 4a: checkpoint, then more traffic, then crash again -------------
    if (!app.value()->checkpoint().ok()) return fail("checkpoint refused");
  }
  const bool crashed_again = crash_a_process_doing([](DurableTicketApp& app) {
    return app.open_ticket(ticket(6, "bgp flap"), staff("bob")).ok();
  });
  if (!crashed_again) return fail("second crash child did not die by SIGKILL");

  // --- 4b: snapshot restore + short replay tail --------------------------
  auto opened = DurableTicketApp::open(kDir, options());
  if (!opened.ok()) return fail(opened.error().to_string().c_str());
  DurableTicketApp& app = *opened.value();
  std::cout << "recovered: snapshot at lsn "
            << app.recovery_stats().snapshot_lsn << ", replayed "
            << app.recovery_stats().replayed << " commit past it\n";
  if (app.recovery_stats().snapshot_lsn == 0) {
    return fail("snapshot was not used on the second recovery");
  }
  if (app.recovery_stats().replayed != 1) {
    return fail("expected only the post-snapshot open to replay");
  }
  if (app.total_opened() != 6 || app.pending() != 5) {
    return fail("state diverged after snapshot + tail recovery");
  }
  // FIFO order survived two crashes: the next assign is ticket 2.
  auto next = app.assign_ticket(staff("oncall"));
  if (!next.ok() || next.value->id != 2) {
    return fail("FIFO order lost across recovery");
  }
  std::cout << "ticket 2 (\"" << next.value->description
            << "\") assigned after two crashes — durability held\n";
  std::filesystem::remove_all(kDir);
  return 0;
}

// Reservation rush (§2 motivation): many clients race for a small seat
// grid. The readers-writer aspect keeps the grid consistent; the priority
// scheduling aspect lets premium customers overtake waiting standard ones —
// both composed around a sequential ReservationSystem.
//
// Run: ./build/examples/reservation_rush [clients] [rows] [cols]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/reservation/reservation_proxy.hpp"
#include "runtime/random.hpp"

int main(int argc, char** argv) {
  using namespace amf;
  using namespace amf::apps::reservation;

  const int clients = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::size_t rows =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;
  const std::size_t cols =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 10;

  runtime::Registry metrics;
  auto proxy = make_reservation_proxy(rows, cols, &metrics);

  std::atomic<int> reserved{0};
  std::atomic<int> rejected{0};

  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        runtime::Rng rng(static_cast<std::uint64_t>(c) + 42);
        const bool premium = c % 3 == 0;
        const std::string who =
            (premium ? "premium-" : "standard-") + std::to_string(c);
        for (std::size_t i = 0; i < rows * cols / 2; ++i) {
          Seat seat{rng.uniform_int(0, rows - 1), rng.uniform_int(0, cols - 1)};
          auto r = proxy->call(reserve_method())
                       .priority(premium ? 10 : 0)
                       .run([&](ReservationSystem& sys) {
                         return sys.reserve(seat, who);
                       });
          if (r.ok() && *r.value) {
            reserved.fetch_add(1);
          } else {
            rejected.fetch_add(1);
          }
        }
      });
    }
  }

  auto free_seats = proxy->invoke(query_method(), [](ReservationSystem& sys) {
    return sys.available();
  });

  const std::size_t taken = rows * cols - free_seats.value.value();
  std::cout << "grid " << rows << "x" << cols << ", " << clients
            << " clients\n"
            << "seats taken:      " << taken << '\n'
            << "accepted reserves:" << reserved.load() << '\n'
            << "rejected (held):  " << rejected.load() << '\n'
            << metrics.report();

  // Every successful reserve corresponds to exactly one occupied seat.
  return taken == static_cast<std::size_t>(reserved.load()) ? 0 : 1;
}

// Replicated trouble-ticketing: three moderated replicas behind a
// name-registry-resolving coordinator. The primary crashes mid-run; the
// coordinator times out, promotes a backup, and the workload continues
// against the replicated state — no client reconfiguration, no change to
// TicketServer.
//
// Run: ./build/examples/replicated_service
#include <iostream>
#include <memory>
#include <vector>

#include "apps/replica/replicated_ticket.hpp"

using namespace amf;
using namespace amf::apps;

int main() {
  net::Transport transport;
  net::NameRegistry registry;

  std::vector<std::unique_ptr<replica::ReplicaNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(std::make_unique<replica::ReplicaNode>(
        transport, "replica-" + std::to_string(i), /*capacity=*/64));
    nodes.back()->start();
  }
  std::vector<replica::ReplicaNode*> raw;
  for (auto& n : nodes) raw.push_back(n.get());
  replica::Coordinator coordinator(transport, registry, raw);

  // Phase 1: normal operation.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    if (!coordinator.open({i, "issue", "client"}).ok()) {
      std::cerr << "unexpected open failure at " << i << '\n';
      return 1;
    }
  }
  std::cout << "phase 1: 10 tickets opened via primary replica-"
            << coordinator.primary_index() << '\n';

  // Phase 2: the primary crashes.
  nodes[0]->fail();
  std::cout << "phase 2: replica-0 crashed\n";
  const auto r = coordinator.open({11, "urgent", "client"});
  std::cout << "         next open: " << (r.ok() ? "ok" : r.error().to_string())
            << " (failovers=" << coordinator.failovers()
            << ", new primary=replica-" << coordinator.primary_index()
            << ")\n";

  // Phase 3: drain three tickets from the replicated state.
  for (int i = 0; i < 3; ++i) {
    auto a = coordinator.assign();
    if (a.ok()) {
      std::cout << "phase 3: assigned ticket " << a.value().id << '\n';
    }
  }

  // Survivor agreement check.
  const auto p1 = nodes[1]->pending_ids();
  const auto p2 = nodes[2]->pending_ids();
  std::cout << "survivors agree: " << (p1 == p2 ? "yes" : "NO") << " ("
            << p1.size() << " pending)\n";

  for (auto& n : nodes) n->stop();
  const bool ok = r.ok() && p1 == p2 && p1.size() == 8;
  std::cout << (ok ? "replicated service OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}

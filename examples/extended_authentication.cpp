// The §5.3 adaptability scenario, live: a running trouble-ticketing system
// acquires an authentication concern AT RUN TIME — no change to
// TicketServer, no change to the synchronization aspects, no restart.
//
// Run: ./build/examples/extended_authentication
#include <iostream>

#include "apps/ticket/ticket_proxy.hpp"
#include "runtime/identity.hpp"

int main() {
  using namespace amf;
  using namespace amf::apps::ticket;

  auto proxy = make_ticket_proxy(/*capacity=*/4);

  // Phase 1: the base system. Anonymous callers are fine.
  auto r1 = open_ticket(*proxy, Ticket{1, "vpn down", "anyone"});
  std::cout << "before extension, anonymous open: "
            << core::to_string(r1.status) << '\n';

  // Phase 2: the new requirement arrives — "authentication should be
  // introduced to the system". One call, system stays up.
  runtime::CredentialStore store;
  (void)store.add_user("alice", "s3cret", {"support"});
  extend_with_authentication(*proxy, store);

  // Anonymous callers are now vetoed before synchronization even runs...
  auto r2 = open_ticket(*proxy, Ticket{2, "mail bounce", "anyone"});
  std::cout << "after extension, anonymous open:  "
            << core::to_string(r2.status) << " (" << r2.error.to_string()
            << ")\n";

  // ...while authenticated sessions proceed.
  auto alice = store.login("alice", "s3cret");
  auto r3 = open_ticket_as(*proxy, Ticket{3, "disk full", "alice"},
                           alice.value());
  std::cout << "after extension, alice's open:     "
            << core::to_string(r3.status) << '\n';

  auto r4 = assign_ticket_as(*proxy, alice.value());
  std::cout << "alice assigns ticket id:           "
            << (r4.ok() ? r4.value->id : 0) << '\n';

  // Revoking the session closes the door again.
  store.revoke(alice.value().token);
  auto r5 = assign_ticket_as(*proxy, alice.value());
  std::cout << "after logout, alice's assign:      "
            << core::to_string(r5.status) << '\n';

  const bool ok = r1.ok() && !r2.ok() && r3.ok() && r4.ok() && !r5.ok();
  std::cout << (ok ? "adaptability scenario OK\n"
                   : "adaptability scenario FAILED\n");
  return ok ? 0 : 1;
}

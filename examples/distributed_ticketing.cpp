// Distributed trouble-ticketing: the same moderated cluster served over
// the (simulated-latency) transport. Remote clients marshal open/assign
// calls into envelopes; the server stub runs them through the proxy, so
// every aspect — synchronization included — executes server-side, exactly
// as in the paper's architecture.
//
// Run: ./build/examples/distributed_ticketing [clients] [tickets-each]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/ticket/ticket_proxy.hpp"
#include "net/rpc.hpp"

using namespace amf;
using namespace amf::apps::ticket;

namespace {

// Server-side adapter: envelope -> moderated proxy call -> envelope.
void install_handlers(net::RpcServer& server, TicketProxy& proxy) {
  server.register_method("open", [&proxy](const net::Envelope& req) {
    Ticket t;
    t.id = req.get_u64("id").value_or(0);
    t.description = req.get("description").value_or("");
    t.opened_by = req.get("opened_by").value_or("");
    auto r = open_ticket(proxy, std::move(t));
    net::Envelope resp;
    if (!r.ok()) {
      resp.put("error", r.error.to_string());
    }
    return resp;
  });
  server.register_method("assign", [&proxy](const net::Envelope& req) {
    (void)req;
    auto r = proxy.call(assign_method())
                 .within(std::chrono::milliseconds(50))
                 .run([](TicketServer& s) { return s.assign(); });
    net::Envelope resp;
    if (r.ok()) {
      resp.put_u64("id", r.value->id);
      resp.put("description", r.value->description);
    } else {
      resp.put("error", r.error.to_string());
    }
    return resp;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 4;
  const int each = argc > 2 ? std::atoi(argv[2]) : 100;

  net::Transport::Options link;
  link.min_latency = std::chrono::microseconds(200);
  link.jitter = std::chrono::microseconds(100);
  net::Transport transport{link};

  auto proxy = make_ticket_proxy(/*capacity=*/16);
  net::RpcServer server(transport, "ticket-server", /*workers=*/4);
  install_handlers(server, *proxy);
  server.start();

  std::atomic<int> opened{0}, assigned{0};
  {
    std::vector<std::jthread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        net::RpcClient client(transport, "client-" + std::to_string(c));
        for (int i = 0; i < each; ++i) {
          net::Envelope open_req;
          open_req.method = "open";
          open_req.put_u64("id", static_cast<std::uint64_t>(c) * 10'000 + i);
          open_req.put("description", "remote issue");
          open_req.put("opened_by", "client-" + std::to_string(c));
          auto r1 = client.call("ticket-server", std::move(open_req),
                                std::chrono::seconds(5));
          if (r1.ok() && !r1.value().is_error()) opened.fetch_add(1);

          net::Envelope assign_req;
          assign_req.method = "assign";
          auto r2 = client.call("ticket-server", std::move(assign_req),
                                std::chrono::seconds(5));
          if (r2.ok() && !r2.value().is_error()) assigned.fetch_add(1);
        }
      });
    }
  }

  server.stop();
  std::cout << "remote opens ok:   " << opened.load() << "/"
            << clients * each << '\n'
            << "remote assigns ok: " << assigned.load() << "/"
            << clients * each << '\n'
            << "server served:     " << server.served() << " requests\n"
            << "left pending:      " << proxy->component().pending() << '\n';

  // Opens always succeed; an assign can time out only when it raced ahead
  // of the matching open, so opened - assigned == pending.
  const bool ok =
      opened.load() == clients * each &&
      static_cast<std::size_t>(opened.load() - assigned.load()) ==
          proxy->component().pending();
  return ok ? 0 : 1;
}

// amf_audit: offline durability auditor (DESIGN.md §17).
//
// Reads a durable-app directory the way recovery would — newest valid
// snapshot, then the log tail past it — but instead of replaying effects it
// REPORTS: per-method commit counts, principals, body outcomes, and the
// structural invariants an operator cares about after an incident:
//
//   * every scanned frame decodes as a commit record (no foreign types);
//   * LSNs are strictly contiguous across the scanned tail — a gap means
//     compaction ate acknowledged history, a repeat means a fork;
//   * the tail starts no later than snapshot_lsn + 1, so replaying the
//     snapshot plus the tail reconstructs every commit.
//
// Usage:
//   amf_audit <dir>     audit an existing directory
//   amf_audit           self-contained demo: generates a store (traffic +
//                       checkpoint + a device-fence window that heals),
//                       then audits it — doubles as the smoke test
#include <filesystem>
#include <iostream>
#include <map>
#include <string>

#include "apps/ticket/durable_ticket.hpp"
#include "runtime/fault.hpp"
#include "storage/codec.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

using namespace amf;
using apps::ticket::DurableTicketApp;
using apps::ticket::Ticket;

namespace {

struct MethodStats {
  std::uint64_t commits = 0;
  std::uint64_t failed_bodies = 0;
};

int fail(const std::string& what) {
  std::cerr << "AUDIT FAILED: " << what << '\n';
  return 1;
}

/// The audit proper: snapshot + tail scan + invariant checks. Returns the
/// process exit code and prints the report to stdout.
int audit(const std::string& dir) {
  auto snapshot = storage::load_latest_snapshot(dir);
  if (!snapshot.ok()) return fail(snapshot.error().to_string());
  const storage::Lsn snap_lsn =
      snapshot.value().has_value() ? snapshot.value()->lsn : 0;

  std::map<std::string, MethodStats> methods;
  std::map<std::string, std::uint64_t> principals;
  storage::Lsn first = 0, last = 0;
  std::uint64_t records = 0;
  bool contiguous = true;

  auto scanned = storage::Wal::scan(
      dir, snap_lsn, [&](const storage::WalRecord& rec) -> runtime::Result<void> {
        if (rec.type != storage::kCommitRecord) {
          return runtime::make_error(
              runtime::ErrorCode::kCorrupted,
              "unknown record type " + std::to_string(rec.type) + " @ lsn " +
                  std::to_string(rec.lsn));
        }
        auto commit = storage::decode_commit(rec.payload);
        if (!commit.ok()) return commit.error();
        if (records == 0) {
          first = rec.lsn;
        } else if (rec.lsn != last + 1) {
          contiguous = false;
        }
        last = rec.lsn;
        ++records;
        auto& m = methods[commit.value().method];
        ++m.commits;
        if (!commit.value().body_succeeded) ++m.failed_bodies;
        ++principals[commit.value().principal.empty()
                         ? std::string("<anonymous>")
                         : commit.value().principal];
        return {};
      });
  if (!scanned.ok()) return fail(scanned.error().to_string());

  std::cout << "amf_audit: " << dir << "\n"
            << "  snapshot lsn : " << snap_lsn << "\n"
            << "  tail records : " << records;
  if (records > 0) std::cout << "  (lsn " << first << ".." << last << ")";
  std::cout << "\n  per-method effect counts:\n";
  for (const auto& [name, stats] : methods) {
    std::cout << "    " << name << ": " << stats.commits;
    if (stats.failed_bodies > 0) {
      std::cout << "  (" << stats.failed_bodies << " failed bodies)";
    }
    std::cout << '\n';
  }
  std::cout << "  per-principal commits:\n";
  for (const auto& [name, count] : principals) {
    std::cout << "    " << name << ": " << count << '\n';
  }

  if (!contiguous) return fail("LSN gap or repeat inside the scanned tail");
  if (records > 0 && snap_lsn > 0 && first > snap_lsn + 1) {
    return fail("tail starts at lsn " + std::to_string(first) +
                " but the snapshot only covers lsn " +
                std::to_string(snap_lsn) + " — replay would lose commits");
  }
  std::cout << "  verdict      : OK — contiguous, snapshot-covered\n";
  return 0;
}

runtime::Principal staff(const char* name) {
  runtime::Principal p;
  p.name = name;
  return p;
}

/// Demo-mode store: real traffic, a checkpoint mid-stream, and a fenced
/// device window that spills and heals — the directory an operator would
/// actually point this tool at.
int generate(const std::string& dir) {
  runtime::FaultInjector fault(23);
  DurableTicketApp::Options options;
  options.capacity = 32;
  options.wal.sync_every = 1;
  options.wal.fault = &fault;
  options.self_heal = true;
  auto app = DurableTicketApp::open(dir, options);
  if (!app.ok()) return fail(app.error().to_string());

  for (std::uint64_t id = 1; id <= 8; ++id) {
    Ticket t;
    t.id = id;
    t.description = "audit-demo";
    t.opened_by = "alice";
    if (!app.value()->open_ticket(t, staff("alice")).ok()) {
      return fail("demo open");
    }
  }
  for (int i = 0; i < 3; ++i) {
    if (!app.value()->assign_ticket(staff("oncall")).ok()) {
      return fail("demo assign");
    }
  }
  if (!app.value()->checkpoint().ok()) return fail("demo checkpoint");

  // A fence window: two commits spill, the device heals, the drain lands
  // them back in LSN order. The audit must see an unbroken sequence.
  fault.arm(runtime::FaultPoint::kIoError, 1.0);
  for (std::uint64_t id = 9; id <= 10; ++id) {
    Ticket t;
    t.id = id;
    t.description = "spilled";
    t.opened_by = "alice";
    if (!app.value()->open_ticket(t, staff("alice")).ok()) {
      return fail("demo fenced open");
    }
  }
  fault.disarm(runtime::FaultPoint::kIoError);
  if (!app.value()->self_healing()->probe()) return fail("demo drain");
  if (!app.value()->sync().ok()) return fail("demo sync");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) return audit(argv[1]);

  const std::string dir = "/tmp/amf_audit_example";
  std::filesystem::remove_all(dir);
  if (int rc = generate(dir); rc != 0) return rc;
  const int rc = audit(dir);
  std::filesystem::remove_all(dir);
  return rc;
}

// Online store: three sequential components (inventory, ledger, orders)
// coordinated through one shared moderator, with a saga-style checkout
// (reserve → charge → record, compensating on failure). Concurrent buyers
// race for limited stock with limited funds; conservation of money and
// stock is checked at the end.
//
// Run: ./build/examples/store_checkout [buyers] [stock]
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/store/store.hpp"

int main(int argc, char** argv) {
  using namespace amf;
  using namespace amf::apps::store;

  const int buyers = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint32_t stock_units =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 30;

  runtime::CredentialStore sessions;
  runtime::EventLog audit;
  (void)sessions.add_user("merchant", "pw", {"merchant"});
  for (int b = 0; b < buyers; ++b) {
    (void)sessions.add_user("buyer" + std::to_string(b), "pw", {});
  }

  Store store(sessions, audit);
  auto merchant = sessions.login("merchant", "pw").value();
  if (!store.stock_item(merchant, "widget", stock_units, 10).ok()) return 1;

  long total_deposited = 0;
  std::vector<runtime::Principal> accounts;
  for (int b = 0; b < buyers; ++b) {
    auto me = sessions.login("buyer" + std::to_string(b), "pw").value();
    const long funds = 100 + b * 40;  // uneven budgets
    (void)store.deposit(me, funds);
    total_deposited += funds;
    accounts.push_back(me);
  }

  std::atomic<int> sold{0}, out_of_stock{0}, out_of_funds{0};
  {
    std::vector<std::jthread> threads;
    for (int b = 0; b < buyers; ++b) {
      threads.emplace_back([&, b] {
        for (int i = 0; i < 20; ++i) {
          auto r = store.checkout(accounts[b], "widget", 1);
          if (r.ok()) {
            sold.fetch_add(1);
          } else if (r.error().message.find("stock") != std::string::npos) {
            out_of_stock.fetch_add(1);
          } else {
            out_of_funds.fetch_add(1);
          }
        }
      });
    }
  }

  long balances = 0;
  for (const auto& me : accounts) balances += store.balance(me.name);

  std::cout << "sold " << sold.load() << " widgets ("
            << out_of_stock.load() << " stock refusals, "
            << out_of_funds.load() << " fund refusals)\n"
            << "stock left:  " << store.stock("widget") << '\n'
            << "revenue:     " << store.revenue() << '\n'
            << "audit trail: " << audit.by_category("store").size()
            << " events\n";

  const bool stock_conserved =
      store.stock("widget") + static_cast<std::uint32_t>(sold.load()) ==
      stock_units;
  const bool money_conserved =
      balances + store.revenue() == total_deposited;
  std::cout << "stock conserved: " << (stock_conserved ? "yes" : "NO")
            << ", money conserved: " << (money_conserved ? "yes" : "NO")
            << '\n';
  return stock_conserved && money_conserved ? 0 : 1;
}

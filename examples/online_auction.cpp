// Online auction (§2 motivation): sellers list items, bidders race, an
// auctioneer closes. Authentication, role authorization, readers-writer
// synchronization and auditing are all composed aspects — AuctionHouse
// itself is sequential domain logic.
//
// Run: ./build/examples/online_auction [bidders] [bids-each]
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/auction/auction_proxy.hpp"

int main(int argc, char** argv) {
  using namespace amf;
  using namespace amf::apps::auction;

  const int bidders = argc > 1 ? std::atoi(argv[1]) : 6;
  const int bids_each = argc > 2 ? std::atoi(argv[2]) : 200;

  runtime::CredentialStore store;
  runtime::EventLog audit_log;
  (void)store.add_user("seller", "pw", {});
  (void)store.add_user("master", "pw", {"auctioneer"});
  for (int b = 0; b < bidders; ++b) {
    (void)store.add_user("bidder-" + std::to_string(b), "pw", {});
  }

  auto proxy = make_auction_proxy(store, audit_log);

  auto seller = store.login("seller", "pw").value();
  auto listed =
      proxy->call(list_method()).as(seller).run([&](AuctionHouse& house) {
        return house.list_item("vintage modem", /*reserve=*/100, "seller");
      });
  const auto item = listed.value.value();

  // Bidders race; each bid is a moderated exclusive write.
  {
    std::vector<std::jthread> threads;
    for (int b = 0; b < bidders; ++b) {
      threads.emplace_back([&, b] {
        auto me = store.login("bidder-" + std::to_string(b), "pw").value();
        for (int i = 1; i <= bids_each; ++i) {
          const std::int64_t amount = b + 1 + i * bidders;
          (void)proxy->call(bid_method()).as(me).run(
              [&](AuctionHouse& house) {
                return house.place_bid(item, me.name, amount);
              });
        }
      });
    }
  }

  // A mere bidder may not close the auction...
  auto bidder0 = store.login("bidder-0", "pw").value();
  auto denied =
      proxy->call(close_method()).as(bidder0).run([&](AuctionHouse& house) {
        return house.close_auction(item);
      });
  std::cout << "bidder tries to close: " << core::to_string(denied.status)
            << " (" << denied.error.to_string() << ")\n";

  // ...the auctioneer may.
  auto master = store.login("master", "pw").value();
  auto sale =
      proxy->call(close_method()).as(master).run([&](AuctionHouse& house) {
        return house.close_auction(item);
      });

  const std::int64_t expected_high =
      static_cast<std::int64_t>(bidders) + bids_each * bidders;
  std::cout << "winner: " << sale.value->winner << " at " << sale.value->amount
            << " (expected highest " << expected_high << ")\n"
            << "audit trail entries: " << audit_log.size() << '\n';

  const bool ok = !denied.ok() && sale.ok() &&
                  sale.value->amount == expected_high;
  return ok ? 0 : 1;
}

// Quickstart: moderate a plain sequential object in ~40 lines.
//
// A sequential Counter is wrapped in a ComponentProxy; a mutual-exclusion
// aspect makes concurrent increments safe, and an audit aspect records the
// calls — neither concern touches the Counter.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <thread>
#include <vector>

#include "aspects/audit.hpp"
#include "aspects/synchronization.hpp"
#include "core/framework.hpp"
#include "runtime/event_log.hpp"

namespace {

// The functional component: no locks, no logging — pure logic.
struct Counter {
  long value = 0;
  void increment() { ++value; }
};

}  // namespace

int main() {
  using namespace amf;

  runtime::EventLog audit_log;
  core::ComponentProxy<Counter> proxy{Counter{}};

  const auto increment = runtime::MethodId::of("increment");
  proxy.moderator().register_aspect(
      increment, runtime::kinds::synchronization(),
      std::make_shared<aspects::MutualExclusionAspect>());
  proxy.moderator().register_aspect(
      increment, runtime::kinds::audit(),
      std::make_shared<aspects::AuditAspect>(audit_log));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  {
    std::vector<std::jthread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          proxy.invoke(increment, [](Counter& c) { c.increment(); });
        }
      });
    }
  }  // jthreads join here

  std::cout << "counter value: " << proxy.component().value << " (expected "
            << kThreads * kPerThread << ")\n";
  std::cout << "audit entries: " << audit_log.size() << "\n";
  std::cout << "admitted:      "
            << proxy.moderator().stats(increment).admitted << "\n";
  return proxy.component().value == kThreads * kPerThread ? 0 : 1;
}
